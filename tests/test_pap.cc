/**
 * @file
 * Tests for PAP (the paper's predictor): confidence-of-8 training,
 * Policy-2 allocation, path-history disambiguation, way prediction,
 * invalidation, and the Table 1 storage budget.
 */

#include <gtest/gtest.h>

#include "pred/lscd.hh"
#include "pred/pap.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::pred;

constexpr Addr kGroup = 0x400000; // 16-byte aligned

/** Train one (group, slot, hist) mapping n times. */
void
trainN(Pap &pap, Addr group, unsigned slot, std::uint64_t hist,
       Addr addr, int n)
{
    for (int i = 0; i < n; ++i)
        pap.train(group, slot, hist, addr, 8, 0);
}

TEST(Pap, NoPredictionWhenCold)
{
    Pap pap({});
    EXPECT_FALSE(pap.predict(kGroup, 0, 0).valid);
}

TEST(Pap, ConfidentAfterAboutEight)
{
    Pap pap({});
    trainN(pap, kGroup, 0, 0x1234, 0xdead00, 16);
    const auto p = pap.predict(kGroup, 0, 0x1234);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.addr, 0xdead00u);
    EXPECT_EQ(p.size, 8u);
}

TEST(Pap, NotConfidentAfterTwo)
{
    // {1, 1/2, 1/4} can never saturate in two observations
    // (allocation + one increment reaches at most state 1 of 3).
    Pap pap({});
    trainN(pap, kGroup, 0, 0x1234, 0xdead00, 2);
    EXPECT_FALSE(pap.predict(kGroup, 0, 0x1234).valid);
}

TEST(Pap, PathHistoryDisambiguates)
{
    // Same PC, two different load-path histories, two addresses: both
    // become confidently predictable — the core PAP property a
    // last-address predictor lacks.
    Pap pap({});
    trainN(pap, kGroup, 0, 0xaaaa, 0x111100, 20);
    trainN(pap, kGroup, 0, 0x5555, 0x222200, 20);
    const auto a = pap.predict(kGroup, 0, 0xaaaa);
    const auto b = pap.predict(kGroup, 0, 0x5555);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    EXPECT_EQ(a.addr, 0x111100u);
    EXPECT_EQ(b.addr, 0x222200u);
}

TEST(Pap, SlotsAreIndependent)
{
    Pap pap({});
    trainN(pap, kGroup, 0, 0x1, 0xaaa000, 20);
    trainN(pap, kGroup, 1, 0x1, 0xbbb000, 20);
    EXPECT_EQ(pap.predict(kGroup, 0, 0x1).addr, 0xaaa000u);
    EXPECT_EQ(pap.predict(kGroup, 1, 0x1).addr, 0xbbb000u);
}

TEST(Pap, AddressChangeResetsConfidence)
{
    Pap pap({});
    trainN(pap, kGroup, 0, 0x1, 0xaaa000, 20);
    ASSERT_TRUE(pap.predict(kGroup, 0, 0x1).valid);
    // One training with a different address: confidence resets and
    // the entry is reallocated in place (§3.1.2).
    pap.train(kGroup, 0, 0x1, 0xccc000, 8, 0);
    EXPECT_FALSE(pap.predict(kGroup, 0, 0x1).valid);
    // Retraining the new address restores confidence.
    trainN(pap, kGroup, 0, 0x1, 0xccc000, 16);
    EXPECT_EQ(pap.predict(kGroup, 0, 0x1).addr, 0xccc000u);
}

TEST(Pap, Policy2ProtectsConfidentEntries)
{
    // Two contexts aliasing to the same APT entry: the confident
    // incumbent survives occasional allocation attempts (Policy-2
    // decrements instead of replacing).
    PapParams params;
    params.tableBits = 1; // 2-entry APT: guaranteed aliasing
    Pap pap(params);
    trainN(pap, kGroup, 0, 0x0, 0xaaa000, 20);
    // Find a context mapping to the same entry: with 2 entries, at
    // least one of a few histories collides; train each only once so
    // a confident incumbent should survive every single attempt.
    for (std::uint64_t h = 1; h < 6; ++h)
        pap.train(kGroup, 0, h, 0xbbb000 + h * 0x100, 8, 0);
    // Unless an aliased context decremented it three times, the
    // incumbent is still predictable; train once more to recover any
    // partial decay and check the address was never replaced.
    trainN(pap, kGroup, 0, 0x0, 0xaaa000, 8);
    const auto p = pap.predict(kGroup, 0, 0x0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.addr, 0xaaa000u);
}

TEST(Pap, WayPrediction)
{
    Pap pap({});
    for (int i = 0; i < 20; ++i)
        pap.train(kGroup, 0, 0x1, 0xaaa000, 8, 3);
    EXPECT_EQ(pap.predict(kGroup, 0, 0x1).way, 3);
}

TEST(Pap, WayPredictionDisabled)
{
    PapParams params;
    params.wayPrediction = false;
    Pap pap(params);
    for (int i = 0; i < 20; ++i)
        pap.train(kGroup, 0, 0x1, 0xaaa000, 8, 3);
    EXPECT_EQ(pap.predict(kGroup, 0, 0x1).way, -1);
}

TEST(Pap, SizeField)
{
    Pap pap({});
    for (int i = 0; i < 20; ++i)
        pap.train(kGroup, 0, 0x1, 0xaaa000, 4, 0);
    EXPECT_EQ(pap.predict(kGroup, 0, 0x1).size, 4u);
}

TEST(Pap, InvalidateClearsEntry)
{
    Pap pap({});
    trainN(pap, kGroup, 0, 0x1, 0xaaa000, 20);
    ASSERT_TRUE(pap.predict(kGroup, 0, 0x1).valid);
    pap.invalidate(kGroup, 0, 0x1);
    EXPECT_FALSE(pap.predict(kGroup, 0, 0x1).valid);
}

TEST(Pap, AssociativityHoldsAliasingContexts)
{
    // Two contexts forced into one set: a 2-way APT keeps both
    // confident where a single direct-mapped entry could hold only
    // one (the conflict loss measured on context-rich workloads).
    PapParams sa;
    sa.tableBits = 1;
    sa.assoc = 2; // one set, two ways
    Pap pap_sa(sa);
    for (int i = 0; i < 40; ++i)
        for (std::uint64_t h = 0; h < 2; ++h)
            pap_sa.train(kGroup, 0, h, 0x1000 + h * 0x100, 8, 0);
    int covered = 0;
    for (std::uint64_t h = 0; h < 2; ++h)
        if (pap_sa.predict(kGroup, 0, h).valid)
            ++covered;
    EXPECT_EQ(covered, 2)
        << "a 2-way set holds both aliasing contexts";
}

TEST(Pap, AssociativeTableStillAccurate)
{
    PapParams pp;
    pp.assoc = 4;
    Pap pap(pp);
    for (int i = 0; i < 20; ++i)
        pap.train(kGroup, 0, 0x1234, 0xdead00, 8, 2);
    const auto p = pap.predict(kGroup, 0, 0x1234);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.addr, 0xdead00u);
    EXPECT_EQ(p.way, 2);
}

TEST(Pap, StorageBudgetTable4)
{
    // Table 4: 1k x 67 bits = 67k bits (ARMv8) plus the 2-bit way.
    Pap pap({});
    EXPECT_NEAR(static_cast<double>(pap.storageBits()), 67.0 * 1024,
                3.0 * 1024);
    // "With a modest 8KB prediction table" (abstract).
    EXPECT_LT(pap.storageBits(), 9ULL * 1024 * 8);
}

TEST(Pap, PathBitIsBitTwo)
{
    EXPECT_FALSE(Pap::pathBit(0x400000));
    EXPECT_TRUE(Pap::pathBit(0x400004));
    EXPECT_FALSE(Pap::pathBit(0x400008));
}

TEST(LoadPathHistory, ShiftsAndRestores)
{
    LoadPathHistory lph(16);
    lph.shiftLoad(0x400004); // bit 1
    lph.shiftLoad(0x400000); // bit 0
    EXPECT_EQ(lph.value(), 0b10u);
    const auto snap = lph.snapshot();
    lph.shiftLoad(0x400004);
    lph.restore(snap);
    EXPECT_EQ(lph.value(), 0b10u);
}

TEST(Lscd, InsertContains)
{
    Lscd l;
    EXPECT_FALSE(l.contains(0x400100));
    l.insert(0x400100);
    EXPECT_TRUE(l.contains(0x400100));
    EXPECT_EQ(l.inserts(), 1u);
}

TEST(Lscd, DuplicateInsertIgnored)
{
    Lscd l;
    l.insert(0x400100);
    l.insert(0x400100);
    EXPECT_EQ(l.inserts(), 1u);
}

TEST(Lscd, FifoEvictionAtCapacity)
{
    Lscd l;
    for (unsigned i = 0; i < Lscd::kEntries; ++i)
        l.insert(0x400000 + i * 4);
    EXPECT_TRUE(l.contains(0x400000));
    l.insert(0x400100); // evicts the oldest
    EXPECT_FALSE(l.contains(0x400000));
    EXPECT_TRUE(l.contains(0x400100));
    EXPECT_TRUE(l.contains(0x400004));
}

TEST(Lscd, Clear)
{
    Lscd l;
    l.insert(0x400100);
    l.clear();
    EXPECT_FALSE(l.contains(0x400100));
}

} // namespace
