/**
 * @file
 * Directed tests of VTAGE-in-core, the CAP-based DLVP variant, and
 * the tournament combination (Figure 8 machinery).
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/configs.hh"
#include "trace/kernel_ctx.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::trace;
using core::CoreParams;
using core::CoreStats;
using core::OoOCore;
using core::VpConfig;

CoreStats
runWith(const Trace &t, const VpConfig &vp)
{
    OoOCore c(CoreParams{}, vp, t);
    return c.run();
}

/** Loads with stable values feeding a serial chain. */
Trace
stableValueChain(int steps)
{
    Trace t;
    KernelCtx ctx(t, 21);
    ctx.mem().write(0x1000, 64, 8); // the "step" is constant
    ctx.sealInitialImage();
    Val pos = ctx.imm(0, 0);
    for (int i = 0; i < steps; ++i) {
        // Address depends on the chain; the value is constant, so a
        // value predictor (not an address predictor) can break it.
        Val step = ctx.load(2, 0x1000 + (pos.v & 0), pos);
        pos = ctx.alu(3, pos.v + step.v, pos, step);
    }
    return t;
}

TEST(CoreVtage, CoversStableLoads)
{
    const auto t = stableValueChain(20000);
    const auto base = runWith(t, sim::baselineVp());
    const auto vtage = runWith(t, sim::vtageConfig());
    EXPECT_GT(vtage.coverage(), 0.5);
    EXPECT_GT(vtage.accuracy(), 0.99);
    EXPECT_LT(vtage.cycles, base.cycles)
        << "covering the step load must break the position chain";
}

TEST(CoreVtage, StaleValueFlushes)
{
    // A committed-store conflict: VTAGE trains to confidence, the
    // value changes, the next prediction flushes — Challenge #1.
    Trace t;
    KernelCtx ctx(t, 23);
    ctx.mem().write(0x2000, 7, 8);
    ctx.sealInitialImage();
    for (int phase = 0; phase < 12; ++phase) {
        // Read the value many times (builds VTAGE confidence).
        for (int i = 0; i < 200; ++i) {
            Val v = ctx.load(0, 0x2000, Val{});
            ctx.alu(1, v.v, v);
        }
        // Change it (committed well before the next phase's reads).
        Val d = ctx.imm(2, phase);
        ctx.store(3, 0x2000, 1000 + phase, Val{}, d);
        Val spin[4] = {ctx.imm(4, 0), ctx.imm(4, 1), ctx.imm(4, 2),
                       ctx.imm(4, 3)};
        for (int k = 0; k < 400; ++k)
            spin[k & 3] = ctx.alu(5 + (k & 7), k, spin[k & 3]);
    }
    const auto vtage = runWith(t, sim::vtageConfig());
    EXPECT_GT(vtage.vpFlushes, 3u)
        << "stale last-values must trigger flushes";
    // DLVP on the same trace reads the committed cache: no flushes.
    const auto dlvp = runWith(t, sim::dlvpConfig());
    EXPECT_EQ(dlvp.vpFlushes, 0u);
    EXPECT_GT(dlvp.coverage(), 0.25);
}

TEST(CoreVtage, AllInstructionsModePredictsAlus)
{
    Trace t;
    KernelCtx ctx(t, 25);
    ctx.sealInitialImage();
    for (int i = 0; i < 20000; ++i)
        ctx.imm(i % 8, 42); // constant-result ALUs
    auto vp = sim::vtageConfigWith(pred::VtageFilter::Static, false);
    const auto s = runWith(t, vp);
    EXPECT_GT(s.vpPredictedInsts, 1000u);
    EXPECT_GT(s.vpCorrectInsts, s.vpPredictedInsts * 95 / 100);
}

TEST(CoreVtage, LoadsOnlyModeIgnoresAlus)
{
    Trace t;
    KernelCtx ctx(t, 25);
    ctx.sealInitialImage();
    for (int i = 0; i < 5000; ++i)
        ctx.imm(i % 8, 42);
    const auto s = runWith(t, sim::vtageConfig());
    EXPECT_EQ(s.vpPredictedInsts, 0u);
}

TEST(CoreCap, PredictsRepeatingAddresses)
{
    Trace t;
    KernelCtx ctx(t, 27);
    ctx.mem().write(0x3000, 123, 8);
    ctx.sealInitialImage();
    for (int i = 0; i < 20000; ++i) {
        Val p = ctx.imm(0, 0x3000);
        Val v = ctx.load(2, 0x3000, p);
        ctx.alu(3, v.v, v);
    }
    const auto s = runWith(t, sim::capConfig());
    EXPECT_GT(s.coverage(), 0.45);
    EXPECT_GT(s.accuracy(), 0.999);
}

TEST(CoreTournament, UsesBothPredictors)
{
    // Mix a PAP-friendly ring with VTAGE-friendly stable-value loads.
    Trace t;
    KernelCtx ctx(t, 29);
    const Addr base = 0x1000000;
    for (int i = 0; i < 4; ++i)
        ctx.mem().write(base + i * 64, base + ((i + 1) % 4) * 64, 8);
    ctx.mem().write(0x2000, 7, 8);
    ctx.sealInitialImage();
    Val cur = ctx.imm(0, base);
    Addr a = base;
    for (int i = 0; i < 8000; ++i) {
        cur = ctx.load(4 + (i % 4) * 4, a, cur);
        a = cur.v;
        Val w = ctx.load(20, 0x2000, Val{});
        ctx.alu(21, w.v, w);
    }
    const auto s = runWith(t, sim::tournamentConfig());
    EXPECT_GT(s.tournamentDlvpFinal, 0u);
    EXPECT_GT(s.coverage(), 0.4);
    EXPECT_EQ(s.tournamentDlvpFinal + s.tournamentVtageFinal,
              s.vpPredictedLoads);
}

TEST(CoreTournament, AtLeastAsGoodAsComponentsOnMix)
{
    Trace t;
    KernelCtx ctx(t, 31);
    const Addr base = 0x1000000;
    for (int i = 0; i < 4; ++i)
        ctx.mem().write(base + i * 64, base + ((i + 1) % 4) * 64, 8);
    ctx.sealInitialImage();
    Val cur = ctx.imm(0, base);
    Addr a = base;
    for (int i = 0; i < 12000; ++i) {
        cur = ctx.load(4 + (i % 4) * 4, a, cur);
        a = cur.v;
    }
    const auto d = runWith(t, sim::dlvpConfig());
    const auto v = runWith(t, sim::vtageConfig());
    const auto both = runWith(t, sim::tournamentConfig());
    EXPECT_LE(both.cycles,
              std::max(d.cycles, v.cycles))
        << "the tournament should not lose to its worse component";
}

TEST(CoreSchemes, BaselineHasNoVpActivity)
{
    Trace t;
    KernelCtx ctx(t, 33);
    ctx.mem().write(0x1000, 1, 8);
    ctx.sealInitialImage();
    for (int i = 0; i < 2000; ++i) {
        Val v = ctx.load(0, 0x1000, Val{});
        ctx.alu(1, v.v, v);
    }
    const auto s = runWith(t, sim::baselineVp());
    EXPECT_EQ(s.vpPredictedLoads, 0u);
    EXPECT_EQ(s.probes, 0u);
    EXPECT_EQ(s.vpFlushes, 0u);
}

TEST(CoreSchemes, AllSchemesCommitIdenticalInstCounts)
{
    Trace t;
    KernelCtx ctx(t, 35);
    ctx.mem().write(0x1000, 5, 8);
    ctx.sealInitialImage();
    for (int i = 0; i < 5000; ++i) {
        Val v = ctx.load(0 + (i % 2) * 4, 0x1000, Val{});
        Val w = ctx.alu(1, v.v + i, v);
        ctx.store(2, 0x1800 + (i % 8) * 8, w.v, Val{}, w);
        ctx.condBranch(3, i % 3 == 0, w, 0);
    }
    const VpConfig configs[] = {
        sim::baselineVp(), sim::dlvpConfig(), sim::capConfig(),
        sim::vtageConfig(), sim::tournamentConfig()};
    for (const auto &vp : configs) {
        const auto s = runWith(t, vp);
        EXPECT_EQ(s.committedInsts, t.size())
            << "accel " << vp.accel;
    }
}

} // namespace
