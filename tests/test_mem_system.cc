/**
 * @file
 * Tests for the TLB, stride prefetcher, and memory hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "mem/prefetcher.hh"
#include "mem/tlb.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::mem;

TEST(Tlb, MissThenHit)
{
    Tlb t(TlbParams{16, 4, 4096, 24});
    EXPECT_EQ(t.access(0x1000), 24u);
    EXPECT_EQ(t.access(0x1000), 0u);
    EXPECT_EQ(t.access(0x1fff), 0u) << "same page";
    EXPECT_EQ(t.access(0x2000), 24u) << "next page";
    EXPECT_EQ(t.misses(), 2u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb t(TlbParams{4, 4, 4096, 10}); // 4 entries, fully assoc
    for (Addr p = 0; p < 5; ++p)
        t.access(p * 4096);
    // Page 0 was LRU and got evicted by page 4.
    EXPECT_EQ(t.access(0), 10u);
}

TEST(StridePrefetcher, DetectsStride)
{
    StridePrefetcher pf({256, 2, 2});
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i) {
        out.clear();
        pf.observe(0x400000, 0x1000 + i * 64, out);
    }
    // Fourth access: the stride has repeated twice -> confident.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x1000u + 4 * 64);
    EXPECT_EQ(out[1], 0x1000u + 5 * 64);
}

TEST(StridePrefetcher, NoPrefetchWithoutPattern)
{
    StridePrefetcher pf({256, 2, 2});
    std::vector<Addr> out;
    Addr addrs[] = {0x1000, 0x5000, 0x2000, 0x9000, 0x1100};
    for (const Addr a : addrs)
        pf.observe(0x400000, a, out);
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, NegativeStride)
{
    StridePrefetcher pf({256, 2, 1});
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i) {
        out.clear();
        pf.observe(0x400000, 0x10000 - i * 128, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x10000u - 4 * 128);
}

TEST(StridePrefetcher, PerPcTracking)
{
    StridePrefetcher pf({256, 2, 1});
    std::vector<Addr> out;
    // Interleave two PCs with different strides: both must train.
    for (int i = 0; i < 4; ++i) {
        pf.observe(0x400000, 0x1000 + i * 64, out);
        pf.observe(0x400100, 0x8000 + i * 256, out);
    }
    EXPECT_GE(out.size(), 2u);
}

TEST(Hierarchy, L1HitLatency)
{
    MemoryHierarchy m(HierarchyParams{});
    m.loadAccess(0x400000, 0x1000, 0); // cold
    const auto r = m.loadAccess(0x400000, 0x1000, 10);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, 2u);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    HierarchyParams p;
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    const auto r = m.loadAccess(0x400000, 0x12345000, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.tlbMiss);
    // TLB walk + L1 + L2 + L3 + memory.
    EXPECT_EQ(r.latency, 24u + 2 + 16 + 32 + 200);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyParams p;
    p.l1d = {"l1d", 128, 1, 64, 2}; // tiny: 2 sets x 1 way
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    m.loadAccess(0x400000, 0x1000, 0);
    m.loadAccess(0x400000, 0x1080, 1); // same set, evicts 0x1000
    const auto r = m.loadAccess(0x400000, 0x1000, 2);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.latency, 2u + 16) << "L2 hit";
}

TEST(Hierarchy, ProbeNeverFills)
{
    HierarchyParams p;
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    const auto r = m.probe(0x2000, -1);
    EXPECT_FALSE(r.hit);
    const auto r2 = m.loadAccess(0x400000, 0x2000, 0);
    EXPECT_FALSE(r2.l1Hit) << "probe must not have installed the line";
}

TEST(Hierarchy, PrefetchFillsAfterLatency)
{
    HierarchyParams p;
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    m.prefetchIntoL1D(0x3000, 100);
    // Immediately after issue the line is still inbound.
    EXPECT_FALSE(m.probe(0x3000, -1).hit);
    // A demand access long after the fill latency hits.
    const auto r =
        m.loadAccess(0x400000, 0x3000, 100 + 300);
    EXPECT_EQ(r.latency, 2u + m.tlb().params().missPenalty)
        << "only the TLB walk and L1 array remain";
}

TEST(Hierarchy, InflightPrefetchPartialCredit)
{
    HierarchyParams p;
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    m.tlb().access(0x3000); // pre-warm translation
    m.prefetchIntoL1D(0x3000, 100);
    // Demand access halfway through the fill waits the remainder.
    const auto full = 16u + 32 + 200;
    const auto r = m.loadAccess(0x400000, 0x3000, 100 + full / 2);
    EXPECT_LT(r.latency, 2u + full);
    EXPECT_GT(r.latency, 2u);
}

TEST(Hierarchy, StoreCommitInstallsLine)
{
    HierarchyParams p;
    p.enablePrefetcher = false;
    MemoryHierarchy m(p);
    m.storeCommit(0x4000, 0);
    const auto r = m.loadAccess(0x400000, 0x4000, 1);
    EXPECT_TRUE(r.l1Hit) << "write-allocate";
}

TEST(Hierarchy, FetchPathUsesICache)
{
    MemoryHierarchy m(HierarchyParams{});
    EXPECT_GT(m.fetchAccess(0x400000, 0), 0u) << "cold I-miss";
    EXPECT_EQ(m.fetchAccess(0x400000, 1), 0u);
    EXPECT_EQ(m.fetchAccess(0x400010, 2), 0u) << "same 64B line";
}

TEST(Hierarchy, StridePrefetcherHidesStream)
{
    MemoryHierarchy with(HierarchyParams{});
    HierarchyParams off;
    off.enablePrefetcher = false;
    MemoryHierarchy without(off);

    std::uint64_t lat_with = 0, lat_without = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr a = 0x100000 + static_cast<Addr>(i) * 64;
        const Cycle now = static_cast<Cycle>(i) * 400;
        lat_with += with.loadAccess(0x400000, a, now).latency;
        lat_without += without.loadAccess(0x400000, a, now).latency;
    }
    EXPECT_LT(lat_with, lat_without)
        << "the stride prefetcher must hide part of the stream";
}

TEST(Hierarchy, ResetStatsClearsCounters)
{
    MemoryHierarchy m(HierarchyParams{});
    m.loadAccess(0x400000, 0x5000, 0);
    m.resetStats();
    EXPECT_EQ(m.l1d().misses(), 0u);
    EXPECT_EQ(m.tlb().misses(), 0u);
}

} // namespace
