/**
 * @file
 * Randomized consistency tests: generate random (but well-formed)
 * micro-op programs and check that every scheme runs them to
 * completion with consistent statistics and that functional replay
 * holds. Seeds are fixed, so failures reproduce.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/configs.hh"
#include "trace/kernel_ctx.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::trace;

/** Generate a random structured program: loops over random ops. */
Trace
randomProgram(std::uint64_t seed, int length)
{
    Trace t;
    t.name = "fuzz-" + std::to_string(seed);
    KernelCtx ctx(t, seed);
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

    // A small data arena.
    const Addr arena = 0x1000000;
    const unsigned slots = 64;
    for (unsigned i = 0; i < slots; ++i)
        ctx.mem().write(arena + i * 8, rng.next64(), 8);
    ctx.sealInitialImage();

    std::vector<Val> live = {ctx.imm(0, 1)};
    auto pick = [&]() -> Val {
        return live[rng.below(live.size())];
    };
    while (ctx.emitted() < static_cast<std::size_t>(length)) {
        const int site = 1 + static_cast<int>(rng.below(200));
        const Addr addr = arena + rng.below(slots) * 8;
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2: {
            live.push_back(
                ctx.alu(site, rng.next64() & 0xffff, pick(), pick()));
            break;
          }
          case 3: {
            live.push_back(ctx.load(site, addr, pick()));
            break;
          }
          case 4: {
            const std::uint64_t v = rng.next64() & 0xffff;
            Val d = pick();
            ctx.store(site, addr, v, pick(), d);
            break;
          }
          case 5: {
            ctx.condBranch(site, rng.chance(0.5), pick(),
                           1 + static_cast<int>(rng.below(200)));
            break;
          }
          case 6: {
            auto pr = ctx.loadPair(site, addr & ~Addr{15}, pick());
            live.push_back(pr.first);
            live.push_back(pr.second);
            break;
          }
          case 7: {
            live.push_back(
                ctx.mul(site, rng.next64() & 0xff, pick(), pick()));
            break;
          }
          case 8: {
            live.push_back(ctx.atomic(site, addr,
                                      rng.next64() & 0xff, pick()));
            break;
          }
          default: {
            live.push_back(ctx.imm(site, rng.below(1000)));
            break;
          }
        }
        if (live.size() > 12)
            live.erase(live.begin(),
                       live.begin() +
                           static_cast<long>(live.size() - 12));
    }
    t.insts.resize(length);
    return t;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Fuzz, ReplayHolds)
{
    const auto t = randomProgram(GetParam(), 6000);
    EXPECT_EQ(t.verifyReplay(), t.size());
}

TEST_P(Fuzz, AllSchemesComplete)
{
    const auto t = randomProgram(GetParam(), 6000);
    const core::VpConfig configs[] = {
        sim::baselineVp(),   sim::dlvpConfig(),
        sim::capConfig(),    sim::strideDlvpConfig(),
        sim::vtageConfig(),  sim::dvtageConfig(),
        sim::tournamentConfig()};
    for (const auto &vp : configs) {
        core::OoOCore c({}, vp, t);
        const auto s = c.run();
        EXPECT_EQ(s.committedInsts, t.size());
        EXPECT_LE(s.vpCorrectLoads, s.vpPredictedLoads);
        EXPECT_LE(s.vpPredictedLoads, s.committedLoads);
        EXPECT_GT(s.cycles, 0u);
    }
}

TEST_P(Fuzz, ReplayRecoveryCompletes)
{
    const auto t = randomProgram(GetParam() ^ 0xabcd, 6000);
    auto vp = sim::dlvpConfig();
    vp.recovery = core::RecoveryMode::OracleReplay;
    vp.useLscd = false;
    core::OoOCore c({}, vp, t);
    const auto s = c.run();
    EXPECT_EQ(s.committedInsts, t.size());
    EXPECT_EQ(s.vpFlushes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // namespace
