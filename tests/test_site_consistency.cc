/**
 * @file
 * Static-site consistency: within a workload trace, one PC is one
 * static instruction — its class, destination count, and load kind
 * must never vary between dynamic instances. Site-id collisions in
 * kernel code (two different emissions sharing a site) violate this
 * and silently poison every predictor's training, so this guard runs
 * over the whole registry.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "trace/workloads.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::trace;

struct SiteInfo
{
    OpClass cls;
    std::uint8_t numDests;
    LoadKind kind;
    std::uint8_t memSize;
};

class SiteConsistency : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SiteConsistency, PcMeansOneStaticInstruction)
{
    const auto t = WorkloadRegistry::build(GetParam(), 30000);
    std::unordered_map<Addr, SiteInfo> sites;
    sites.reserve(4096);
    for (const auto &inst : t.insts) {
        auto [it, fresh] = sites.emplace(
            inst.pc, SiteInfo{inst.cls, inst.numDests, inst.loadKind,
                              inst.memSize});
        if (fresh)
            continue;
        const SiteInfo &s = it->second;
        ASSERT_EQ(s.cls, inst.cls)
            << "site collision at pc " << std::hex << inst.pc;
        ASSERT_EQ(s.numDests, inst.numDests)
            << "dest-count collision at pc " << std::hex << inst.pc;
        ASSERT_EQ(s.kind, inst.loadKind)
            << "load-kind collision at pc " << std::hex << inst.pc;
        if (inst.isLoad() || inst.isStore()) {
            ASSERT_EQ(s.memSize, inst.memSize)
                << "access-size collision at pc " << std::hex
                << inst.pc;
        }
    }
}

TEST_P(SiteConsistency, BranchesRecordPlausibleTargets)
{
    // Taken direct control flow must land where the trace goes —
    // except at kernel phase switches in mixed workloads, where the
    // interleaver jumps between programs (a handful per trace).
    const auto t = WorkloadRegistry::build(GetParam(), 30000);
    std::uint64_t direct = 0, mismatched = 0;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        const auto &inst = t[i];
        if (inst.cls != OpClass::DirectJump &&
            inst.cls != OpClass::Call)
            continue;
        ++direct;
        if (inst.branchTarget != t[i + 1].pc)
            ++mismatched;
    }
    if (direct > 0) {
        EXPECT_LE(mismatched, direct / 100 + 16)
            << "more target mismatches than phase switches explain";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SiteConsistency,
    ::testing::ValuesIn(trace::WorkloadRegistry::names()),
    [](const ::testing::TestParamInfo<std::string> &tpi) {
        // gtest parameter names must be alphanumeric ("mega-mix" is
        // not); map the dashes.
        std::string n = tpi.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
