// Fixture: spec-state violations. ghost_ has neither snapshot nor
// restore site; halfway_ is saved into a *Snap field but never
// restored — the exact missing-flush-restore bug class.
#include <cstdint>

#define DLVP_SPEC_STATE(member) \
    static_assert(true, "speculative state: " #member)

class SpecBad
{
  public:
    struct Checkpoint
    {
        std::uint64_t halfSnap = 0;
    };

    Checkpoint
    checkpoint() const
    {
        Checkpoint c;
        c.halfSnap = halfway_;
        return c;
    }

  private:
    std::uint64_t ghost_ = 0;
    DLVP_SPEC_STATE(ghost_);
    std::uint64_t halfway_ = 0;
    DLVP_SPEC_STATE(halfway_);
};
