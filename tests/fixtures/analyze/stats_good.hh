// Fixture: registry and struct in sync, all fields zero-initialized.
#include <cstdint>
#include <ostream>

#define DLVP_CORE_STATS_FIELDS(X) \
    X(cycles) \
    X(committedInsts) \
    X(committedLoads)

struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedLoads = 0;

    bool operator==(const CoreStats &) const = default;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(committedInsts) /
                                 static_cast<double>(cycles);
    }
};
