// Fixture: error-taxonomy violations — a foreign exception type, a
// raw abort(), and a raw exit().
#include <cstdlib>
#include <stdexcept>

int
parsePositive(int v)
{
    if (v < 0)
        throw std::runtime_error("negative");
    return v;
}

void
dieHard(bool fast)
{
    if (fast)
        std::abort();
    exit(1);
}
