// Layering trip fixture: a core-layer file reaching up into serve —
// the exact back-edge the shipped manifest (tools/analyze/layers.txt)
// must reject. Never compiled.

#include "serve/server.hh"

#include "common/logging.hh"

int coreReachingUp = 0;
