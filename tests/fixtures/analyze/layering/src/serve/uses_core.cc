// Layering clean fixture: serve sits above core in the DAG, so this
// downward include is allowed by the shipped manifest.

#include "core/params.hh"

#include "common/logging.hh"

int serveReachingDown = 0;
