// Fixture: stats-registry violations — a field missing from the
// X-macro, a field without zero-init, and a stale macro entry naming
// no field.
#include <cstdint>

#define DLVP_CORE_STATS_FIELDS(X) \
    X(cycles) \
    X(committedInsts) \
    X(removedCounter)

struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committedInsts;      // not zero-initialized
    std::uint64_t unlistedCounter = 0; // missing from the X-macro
};
