// Fixture: determinism-clean file. Mentions of rand() and time() in
// comments and strings must not be flagged; steady_clock is the
// sanctioned timing source; a justified unordered iteration carries a
// suppression comment.
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>

struct DetClean
{
    std::unordered_map<int, int> table_;
    std::map<std::string, int> ordered_;

    const char *notice_ = "calls rand() and time() nowhere";

    long
    elapsed() const
    {
        // rand() in a comment is fine.
        const auto t0 = std::chrono::steady_clock::now();
        return (std::chrono::steady_clock::now() - t0).count();
    }

    int
    sum() const
    {
        int total = 0;
        // Order-independent reduction over the table.
        // dlvp-analyze: allow(determinism)
        for (const auto &kv : table_)
            total += kv.second;
        for (const auto &kv : ordered_)
            total += kv.second;
        return total;
    }
};
