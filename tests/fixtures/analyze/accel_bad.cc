// accel-registry fixture: 'orphan' is registered but the golden
// table (accel_golden_bad.inc) never pins it, and the table pins
// 'ghost', which nothing here registers.

#define DLVP_ACCEL(key) key // the marker itself registers nothing

// A doc example like DLVP_ACCEL("comment-key") must not count either.

void
registerFixtureAccelerators()
{
    registerAccelerator({DLVP_ACCEL("alpha"), "first", nullptr});
    registerAccelerator({DLVP_ACCEL("beta"), "second", nullptr});
    registerAccelerator({DLVP_ACCEL("orphan"), "unpinned", nullptr});
}
