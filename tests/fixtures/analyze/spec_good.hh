// Fixture: properly recovered speculative state — one member covered
// by snapshot()/restore() functions, one by explicit *Snap
// assignments on the flush path.
#include <cstdint>

#define DLVP_SPEC_STATE(member) \
    static_assert(true, "speculative state: " #member)

class SpecGood
{
  public:
    std::uint64_t snapshot() const { return hist_; }
    void restore(std::uint64_t snap) { hist_ = snap; }

    void
    onFetch()
    {
        ghrSnap = ghr_;
    }

    void
    applyFlush()
    {
        ghr_ = ghrSnap;
    }

  private:
    std::uint64_t hist_ = 0;
    DLVP_SPEC_STATE(hist_);
    std::uint64_t ghr_ = 0;
    DLVP_SPEC_STATE(ghr_);
    std::uint64_t ghrSnap = 0;
};
