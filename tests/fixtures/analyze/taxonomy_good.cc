// Fixture: error-taxonomy-clean file — RunError throws, a bare
// rethrow, atexit registration (not exit), and a suppressed abort in
// panic-style infrastructure.
#include <cstdlib>
#include <string>

enum class ErrorKind
{
    Internal
};

struct RunError
{
    RunError(ErrorKind, const std::string &) {}
};

int
parsePositive(int v)
{
    if (v < 0)
        throw RunError(ErrorKind::Internal, "negative");
    return v;
}

void
forward()
{
    try {
        parsePositive(-1);
    } catch (...) {
        throw; // bare rethrow is allowed
    }
}

void
installHook()
{
    std::atexit([] {});
}

[[noreturn]] void
panicStop()
{
    std::abort(); // dlvp-analyze: allow(error-taxonomy)
}
