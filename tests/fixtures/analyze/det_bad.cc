// Fixture: trips every determinism sub-rule. Never compiled — parsed
// by test_analyze.cc through the dlvp_analyze library.
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>

struct DetBad
{
    std::unordered_map<int, int> table_;
    std::map<int *, int> byPointer_; // pointer-keyed ordered map

    int
    roll()
    {
        std::srand(static_cast<unsigned>(std::time(nullptr)));
        return std::rand();
    }

    int
    sum() const
    {
        int total = 0;
        for (const auto &kv : table_) // unordered iteration
            total += kv.second;
        return total;
    }

    // Lockstep-scheduling shape: timing a lane with a clock that may
    // alias wall time.
    long
    laneSlice()
    {
        auto t0 = std::chrono::high_resolution_clock::now();
        return t0.time_since_epoch().count();
    }
};
