// Hot-path trip fixture: step() is tagged DLVP_HOT and both contains
// a banned call directly (printf: I/O) and reaches container growth
// through the callee record(). Never compiled.

#include <cstdio>
#include <vector>

class Pipe
{
  public:
    void
    step()
    {
        DLVP_HOT;
        printf("tick\n"); // trips: I/O directly on the hot path
        record(1);        // trips transitively: record() grows log_
    }

  private:
    void
    record(int v)
    {
        log_.push_back(v);
    }

    std::vector<int> log_;
};
