// Stale-suppression clean fixture: the allow comment actually
// silences a determinism finding on its line, so it is not stale.

#include <cstdlib>

void
seedLegacyLibrary()
{
    std::srand(1); // dlvp-analyze: allow(determinism)
}
