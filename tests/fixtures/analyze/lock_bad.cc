// Lock-discipline trip fixture: `balance_` is declared guarded by
// `m_`, but peek() reads it with no lock held and no DLVP_REQUIRES
// tag. Never compiled; parsed by tests/test_analyze.cc.

#include <mutex>

class Account
{
  public:
    void
    deposit(long n)
    {
        std::lock_guard<std::mutex> lock(m_);
        balance_ += n;
    }

    long
    peek() const
    {
        return balance_; // trips: no lock held here
    }

  private:
    mutable std::mutex m_;
    long balance_ = 0;
    DLVP_GUARDED_BY(m_);
};
