// Lock-discipline clean fixture: every access to the guarded members
// happens under a lock scope, inside a DLVP_REQUIRES-tagged helper,
// or in the constructor (single-threaded by definition).

#include <mutex>
#include <shared_mutex>

class Ledger
{
  public:
    Ledger() { balance_ = 100; } // ctor: exempt

    void
    deposit(long n)
    {
        std::lock_guard<std::mutex> lock(m_);
        balance_ += n;
        bumpLocked();
    }

    long
    read() const
    {
        std::shared_lock<std::shared_mutex> lock(rw_);
        return shadow_;
    }

  private:
    void
    bumpLocked()
    {
        DLVP_REQUIRES(m_);
        ++balance_;
    }

    mutable std::mutex m_;
    long balance_ = 0;
    DLVP_GUARDED_BY(m_);

    mutable std::shared_mutex rw_;
    long shadow_ = 0;
    DLVP_GUARDED_BY(rw_);
};
