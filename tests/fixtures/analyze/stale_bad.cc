// Stale-suppression trip fixture: one allow comment names a rule
// that finds nothing on its line (stale), another names a rule that
// does not exist (typo). Never compiled.

int counter = 0; // dlvp-analyze: allow(determinism)

int typoed = 0; // dlvp-analyze: allow(determinsm)
