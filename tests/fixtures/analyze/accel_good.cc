// accel-registry fixture: every registered key is pinned by
// accel_golden_good.inc, except 'experimental', whose registration
// carries an explicit suppression.

#define DLVP_ACCEL(key) key

void
registerFixtureAccelerators()
{
    registerAccelerator({DLVP_ACCEL("alpha"), "first", nullptr});
    registerAccelerator({DLVP_ACCEL("beta"), "second", nullptr});
    // dlvp-analyze: allow(accel-registry)
    registerAccelerator({DLVP_ACCEL("experimental"), "wip", nullptr});
}
