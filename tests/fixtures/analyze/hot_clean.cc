// Hot-path clean fixture: the tagged function sticks to arithmetic,
// array indexing, and allocation-free callees; the throw statement is
// exempt (the failure path may allocate its message).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

class Wheel
{
  public:
    std::uint64_t
    advance(std::uint64_t n)
    {
        DLVP_HOT;
        if (n >= slots_.size())
            throw std::out_of_range("slot " + std::to_string(n));
        cursor_ = bump(cursor_ + n);
        return slots_[cursor_];
    }

  private:
    std::uint64_t
    bump(std::uint64_t v) const
    {
        return v & (slots_.size() - 1);
    }

    std::vector<std::uint64_t> slots_ = std::vector<std::uint64_t>(8);
    std::uint64_t cursor_ = 0;
};
