/**
 * @file
 * Tests for VTAGE (including the §5.2.2 opcode filters), CAP, and the
 * tournament chooser.
 */

#include <gtest/gtest.h>

#include "pred/cap.hh"
#include "pred/chooser.hh"
#include "pred/vtage.hh"
#include "trace/instruction.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::pred;
using trace::LoadKind;
using trace::OpClass;
using trace::TraceInst;

TraceInst
makeLoad(Addr pc, LoadKind kind = LoadKind::Simple,
         unsigned dests = 1)
{
    TraceInst i;
    i.pc = pc;
    i.cls = OpClass::Load;
    i.loadKind = kind;
    i.numDests = static_cast<std::uint8_t>(dests);
    i.memSize = 8;
    return i;
}

TraceInst
makeAlu(Addr pc)
{
    TraceInst i;
    i.pc = pc;
    i.cls = OpClass::IntAlu;
    i.numDests = 1;
    return i;
}

TEST(Vtage, ColdNoPrediction)
{
    Vtage v({});
    const auto inst = makeLoad(0x400100);
    EXPECT_FALSE(v.predict(inst, 0, 0).valid);
}

TEST(Vtage, ConfidenceNeedsManyObservations)
{
    Vtage v({});
    const auto inst = makeLoad(0x400100);
    // Ten observations are nowhere near the ~64 requirement.
    for (int i = 0; i < 10; ++i)
        v.train(inst, 0, 0, 42, false, false);
    EXPECT_FALSE(v.predict(inst, 0, 0).valid);
    // A few hundred stable observations saturate the FPC w.h.p.
    for (int i = 0; i < 400; ++i)
        v.train(inst, 0, 0, 42, false, false);
    const auto p = v.predict(inst, 0, 0);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.value, 42u);
}

TEST(Vtage, ValueChangeStopsPrediction)
{
    Vtage v({});
    const auto inst = makeLoad(0x400100);
    for (int i = 0; i < 400; ++i)
        v.train(inst, 0, 0, 42, false, false);
    ASSERT_TRUE(v.predict(inst, 0, 0).valid);
    v.train(inst, 0, 0, 43, false, false);
    EXPECT_FALSE(v.predict(inst, 0, 0).valid)
        << "a conflicting store's new value resets confidence";
}

TEST(Vtage, HistoryDisambiguates)
{
    Vtage v({});
    const auto inst = makeLoad(0x400100);
    for (int i = 0; i < 500; ++i) {
        v.train(inst, 0, 0b00000, 111, false, false);
        v.train(inst, 0, 0b10101, 222, false, false);
    }
    const auto a = v.predict(inst, 0, 0b00000);
    const auto b = v.predict(inst, 0, 0b10101);
    ASSERT_TRUE(a.valid && b.valid);
    EXPECT_EQ(a.value, 111u);
    EXPECT_EQ(b.value, 222u);
}

TEST(Vtage, DestIndexesIndependent)
{
    Vtage v({});
    const auto inst = makeLoad(0x400100, LoadKind::Pair, 2);
    VtageParams p;
    p.filter = VtageFilter::None;
    Vtage vv(p);
    for (int i = 0; i < 500; ++i) {
        vv.train(inst, 0, 0, 5, false, false);
        vv.train(inst, 1, 0, 6, false, false);
    }
    EXPECT_EQ(vv.predict(inst, 0, 0).value, 5u);
    EXPECT_EQ(vv.predict(inst, 1, 0).value, 6u);
}

TEST(Vtage, StaticFilterBlocksMultiDest)
{
    Vtage v({}); // default: static filter, loads only
    EXPECT_TRUE(v.eligible(makeLoad(0x1000)));
    EXPECT_FALSE(v.eligible(makeLoad(0x1000, LoadKind::Pair, 2)));
    EXPECT_FALSE(v.eligible(makeLoad(0x1000, LoadKind::Multi, 8)));
    EXPECT_FALSE(v.eligible(makeLoad(0x1000, LoadKind::Vector, 2)));
}

TEST(Vtage, VanillaAllowsMultiDest)
{
    VtageParams p;
    p.filter = VtageFilter::None;
    Vtage v(p);
    EXPECT_TRUE(v.eligible(makeLoad(0x1000, LoadKind::Pair, 2)));
    EXPECT_TRUE(v.eligible(makeLoad(0x1000, LoadKind::Multi, 8)));
}

TEST(Vtage, LoadsOnlyExcludesAlu)
{
    Vtage v({});
    EXPECT_FALSE(v.eligible(makeAlu(0x1000)));
}

TEST(Vtage, AllInstructionsIncludesAlu)
{
    VtageParams p;
    p.loadsOnly = false;
    Vtage v(p);
    EXPECT_TRUE(v.eligible(makeAlu(0x1000)));
    EXPECT_TRUE(v.eligible(makeLoad(0x1000)));
}

TEST(Vtage, DynamicFilterLearnsToBlock)
{
    VtageParams p;
    p.filter = VtageFilter::Dynamic;
    p.dynFilterMinSamples = 64;
    Vtage v(p);
    const auto ldm = makeLoad(0x400100, LoadKind::Multi, 8);
    ASSERT_TRUE(v.eligible(ldm)) << "starts unblocked";
    // Feed it a stream of predicted-but-wrong outcomes.
    for (int i = 0; i < 100; ++i)
        v.train(ldm, 0, 0, static_cast<std::uint64_t>(i), true, false);
    EXPECT_FALSE(v.eligible(ldm))
        << "below-95%-accuracy types get blocked";
}

TEST(Vtage, DynamicFilterKeepsAccurateTypes)
{
    VtageParams p;
    p.filter = VtageFilter::Dynamic;
    p.dynFilterMinSamples = 64;
    Vtage v(p);
    const auto ld = makeLoad(0x400100);
    for (int i = 0; i < 100; ++i)
        v.train(ld, 0, 0, 42, true, true);
    EXPECT_TRUE(v.eligible(ld));
}

TEST(Vtage, StorageBudgetTable4)
{
    Vtage v({});
    // 3 x 256 x 83 = 63744 bits = 62.3k bits.
    EXPECT_EQ(v.storageBits(), 3ULL * 256 * 83);
}

TEST(OpType, Classification)
{
    EXPECT_EQ(classifyOpType(makeLoad(0, LoadKind::Simple)),
              OpType::SimpleLoad);
    EXPECT_EQ(classifyOpType(makeLoad(0, LoadKind::Pair, 2)),
              OpType::PairLoad);
    EXPECT_EQ(classifyOpType(makeLoad(0, LoadKind::Multi, 4)),
              OpType::MultiLoad);
    EXPECT_EQ(classifyOpType(makeLoad(0, LoadKind::Vector, 2)),
              OpType::VectorLoad);
    EXPECT_EQ(classifyOpType(makeAlu(0)), OpType::IntAlu);
}

// ---- CAP ----

TEST(Cap, ColdNoPrediction)
{
    Cap c(CapParams{});
    EXPECT_FALSE(c.predict(0x400100).valid);
}

TEST(Cap, LearnsRepeatingAddress)
{
    CapParams p;
    p.confThreshold = 3;
    Cap c(p);
    for (int i = 0; i < 20; ++i)
        c.train(0x400100, 0xaaa000);
    const auto pr = c.predict(0x400100);
    ASSERT_TRUE(pr.valid);
    EXPECT_EQ(pr.addr, 0xaaa000u);
}

TEST(Cap, LearnsAlternatingAddresses)
{
    // A last-address predictor fails on A/B/A/B; CAP's per-load
    // history context captures it.
    CapParams p;
    p.confThreshold = 3;
    Cap c(p);
    for (int i = 0; i < 200; ++i)
        c.train(0x400100, (i % 2) ? 0xaaa000 : 0xbbb000);
    int correct = 0;
    for (int i = 0; i < 40; ++i) {
        const Addr expect = (i % 2) ? 0xaaa000 : 0xbbb000;
        const auto pr = c.predict(0x400100);
        if (pr.valid && pr.addr == expect)
            ++correct;
        c.train(0x400100, expect);
    }
    EXPECT_GT(correct, 36);
}

TEST(Cap, ConfidenceThresholdDelaysPrediction)
{
    CapParams hi;
    hi.confThreshold = 64;
    Cap c(hi);
    for (int i = 0; i < 30; ++i)
        c.train(0x400100, 0xaaa000);
    EXPECT_FALSE(c.predict(0x400100).valid)
        << "30 observations cannot satisfy a confidence of 64";
    for (int i = 0; i < 64; ++i)
        c.train(0x400100, 0xaaa000);
    EXPECT_TRUE(c.predict(0x400100).valid);
}

TEST(Cap, MispredictResetsConfidence)
{
    CapParams p;
    p.confThreshold = 3;
    Cap c(p);
    for (int i = 0; i < 20; ++i)
        c.train(0x400100, 0xaaa000);
    ASSERT_TRUE(c.predict(0x400100).valid);
    c.train(0x400100, 0xccc000);
    EXPECT_FALSE(c.predict(0x400100).valid);
}

TEST(Cap, StorageBudgetTable4)
{
    // Table 4 (ARMv8): 95k bits total.
    Cap c(CapParams{});
    EXPECT_NEAR(static_cast<double>(c.storageBits()), 95.0 * 1024,
                8.0 * 1024);
}

// ---- Tournament chooser ----

TEST(Chooser, DefaultPrefersDlvp)
{
    TournamentChooser ch;
    EXPECT_TRUE(ch.preferDlvp(0x400100));
}

TEST(Chooser, LearnsVtagePreference)
{
    TournamentChooser ch;
    for (int i = 0; i < 4; ++i)
        ch.update(0x400100, false, true);
    EXPECT_FALSE(ch.preferDlvp(0x400100));
    EXPECT_TRUE(ch.preferDlvp(0x400200)) << "other PCs unaffected";
}

TEST(Chooser, AgreementIsUninformative)
{
    TournamentChooser ch;
    for (int i = 0; i < 10; ++i) {
        ch.update(0x400100, true, true);
        ch.update(0x400100, false, false);
    }
    EXPECT_TRUE(ch.preferDlvp(0x400100)) << "counter unchanged";
}

TEST(Chooser, RecoversPreference)
{
    TournamentChooser ch;
    for (int i = 0; i < 4; ++i)
        ch.update(0x400100, false, true);
    for (int i = 0; i < 4; ++i)
        ch.update(0x400100, true, false);
    EXPECT_TRUE(ch.preferDlvp(0x400100));
}

} // namespace
