/**
 * @file
 * Tests for trace serialization and the partitioned tournament
 * extension, plus a seeded corruption fuzzer for the hardened loader:
 * no truncation point or bit flip may crash, abort, or trip ASan —
 * every corrupt input either loads (flips in pure payload bytes) or
 * fails cleanly with RunError{io_corrupt}.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>

#include "common/fault_inject.hh"
#include "common/run_error.hh"
#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::trace;

TEST(TraceIo, RoundTripPreservesEverything)
{
    const auto orig = WorkloadRegistry::build("viterb", 8000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));

    Trace loaded;
    ASSERT_TRUE(loadTrace(loaded, buf));
    EXPECT_EQ(loaded.name, orig.name);
    EXPECT_EQ(loaded.suite, orig.suite);
    ASSERT_EQ(loaded.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, orig[i].pc) << i;
        EXPECT_EQ(loaded[i].cls, orig[i].cls) << i;
        EXPECT_EQ(loaded[i].memAddr, orig[i].memAddr) << i;
        EXPECT_EQ(loaded[i].destValue, orig[i].destValue) << i;
        EXPECT_EQ(loaded[i].numDests, orig[i].numDests) << i;
        EXPECT_EQ(loaded[i].taken, orig[i].taken) << i;
    }
    EXPECT_EQ(loaded.initialImage.numPages(),
              orig.initialImage.numPages());
    EXPECT_EQ(loaded.verifyReplay(), loaded.size())
        << "functional replay must survive the round trip";
}

TEST(TraceIo, LoadedTraceSimulatesIdentically)
{
    const auto orig = WorkloadRegistry::build("crafty", 10000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    Trace loaded;
    ASSERT_TRUE(loadTrace(loaded, buf));

    sim::Simulator s(sim::baselineCore(), 10000);
    const auto a = s.run(orig, sim::dlvpConfig());
    const auto b = s.run(loaded, sim::dlvpConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.vpPredictedLoads, b.vpPredictedLoads);
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream buf;
    buf << "this is not a trace file";
    Trace t;
    EXPECT_FALSE(loadTrace(t, buf));
}

TEST(TraceIo, RejectsTruncation)
{
    const auto orig = WorkloadRegistry::build("viterb", 2000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    Trace t;
    EXPECT_FALSE(loadTrace(t, cut));
}

TEST(TraceIo, FileRoundTrip)
{
    const auto orig = WorkloadRegistry::build("idctrn", 3000);
    const std::string path = "/tmp/dlvp_test_trace.trc";
    ASSERT_TRUE(saveTraceFile(orig, path));
    Trace loaded;
    ASSERT_TRUE(loadTraceFile(loaded, path));
    EXPECT_EQ(loaded.size(), orig.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    Trace t;
    EXPECT_FALSE(loadTraceFile(t, "/nonexistent/path/x.trc"));
}

// ---------------------------------------------------------------------
// Corruption fuzzing (DESIGN.md §9: no corrupt byte pattern may abort)
// ---------------------------------------------------------------------

/** Serialized bytes of a small but page-carrying trace. */
std::string
serializedTrace(std::size_t insts = 1500)
{
    const auto orig = WorkloadRegistry::build("viterb", insts);
    std::stringstream buf;
    if (!saveTrace(orig, buf))
        ADD_FAILURE() << "saveTrace failed";
    return buf.str();
}

TEST(CorruptionFuzz, EveryTruncationPointFailsCleanly)
{
    const std::string full = serializedTrace();
    ASSERT_GT(full.size(), 256u);
    // A strict prefix always misses bytes some section promised, so
    // the loader must report failure — never crash or return true.
    // Exhaustive over the header region, strided through the payload.
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n <= 192 && n < full.size(); ++n)
        cuts.push_back(n);
    for (std::size_t n = 193; n < full.size(); n += 97)
        cuts.push_back(n);
    for (const std::size_t n : cuts) {
        std::stringstream cut(full.substr(0, n));
        Trace t;
        EXPECT_FALSE(loadTrace(t, cut)) << "cut at " << n;
    }
}

TEST(CorruptionFuzz, RandomBitFlipsNeverCrash)
{
    const std::string full = serializedTrace();
    std::mt19937_64 rng(0x51eeded5eedULL);
    std::size_t loaded_ok = 0, rejected = 0;
    for (int trial = 0; trial < 200; ++trial) {
        std::string bytes = full;
        const int nflips = 1 + static_cast<int>(rng() % 4);
        for (int f = 0; f < nflips; ++f) {
            const std::size_t byte = rng() % bytes.size();
            bytes[byte] = static_cast<char>(
                static_cast<unsigned char>(bytes[byte]) ^
                (1u << (rng() % 8)));
        }
        std::stringstream buf(bytes);
        Trace t;
        if (loadTrace(t, buf)) {
            // A flip in pure payload (values, addresses) can still
            // parse; the structure must then be intact.
            EXPECT_LE(t.size(), full.size());
            ++loaded_ok;
        } else {
            ++rejected;
        }
    }
    // Both outcomes must occur across 200 seeded trials: header
    // flips reject, payload flips load.
    EXPECT_GT(loaded_ok, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(CorruptionFuzz, ThrowingLoaderReportsIoCorrupt)
{
    std::stringstream buf("definitely not a trace");
    Trace t;
    try {
        loadTraceOrThrow(t, buf);
        FAIL() << "garbage must not load";
    } catch (const dlvp::common::RunError &e) {
        EXPECT_EQ(e.kind(), dlvp::common::ErrorKind::IoCorrupt);
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos);
    }
}

TEST(CorruptionFuzz, WrongVersionByteRejected)
{
    std::string bytes = serializedTrace(500);
    bytes[7] = '9'; // magic intact, version bumped
    std::stringstream buf(bytes);
    Trace t;
    try {
        loadTraceOrThrow(t, buf);
        FAIL() << "future version must not load";
    } catch (const dlvp::common::RunError &e) {
        EXPECT_EQ(e.kind(), dlvp::common::ErrorKind::IoCorrupt);
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(CorruptionFuzz, HugeInstructionCountFailsFastWithoutOom)
{
    const auto orig = WorkloadRegistry::build("viterb", 500);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    std::string bytes = buf.str();
    // The u64 instruction count sits 8 bytes before the fixed-width
    // records (50 bytes each, trace_io.cc kInstBytes).
    const std::size_t count_off = bytes.size() - orig.size() * 50 - 8;
    for (std::size_t i = 0; i < 8; ++i)
        bytes[count_off + i] = static_cast<char>(0xFF);
    std::stringstream cut(bytes);
    Trace t;
    // Must be rejected by the remaining-bytes check before any
    // multi-GB reserve() — under ASan an attempted 2^64-entry vector
    // would abort the test binary.
    EXPECT_FALSE(loadTrace(t, cut));
}

TEST(CorruptionFuzz, MisalignedPageAddressRejected)
{
    const auto orig = WorkloadRegistry::build("viterb", 500);
    ASSERT_GT(orig.initialImage.numPages(), 0u)
        << "fuzz target needs a memory image";
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    std::string bytes = buf.str();
    // First page address follows magic, two length-prefixed strings,
    // and the u64 page count.
    const std::size_t addr_off = 8 + 4 + orig.name.size() + 4 +
                                 orig.suite.size() + 8;
    bytes[addr_off] = static_cast<char>(
        static_cast<unsigned char>(bytes[addr_off]) | 1);
    std::stringstream mut(bytes);
    Trace t;
    try {
        loadTraceOrThrow(t, mut);
        FAIL() << "misaligned page must not install";
    } catch (const dlvp::common::RunError &e) {
        EXPECT_EQ(e.kind(), dlvp::common::ErrorKind::IoCorrupt);
        EXPECT_NE(std::string(e.what()).find("aligned"),
                  std::string::npos);
    }
}

TEST(CorruptionFuzz, FaultPlanCorruptsFileLoads)
{
    const auto orig = WorkloadRegistry::build("viterb", 500);
    const std::string path = "/tmp/dlvp_test_fault_trace.trc";
    ASSERT_TRUE(saveTraceFile(orig, path));

    // Clean load works...
    Trace t;
    ASSERT_TRUE(loadTraceFile(t, path));

    // ...a truncating plan makes the same file fail cleanly...
    dlvp::common::FaultPlan::setGlobal("trunc:64");
    EXPECT_FALSE(loadTraceFile(t, path));
    try {
        loadTraceFileOrThrow(t, path);
        FAIL() << "truncated bytes must not load";
    } catch (const dlvp::common::RunError &e) {
        EXPECT_EQ(e.kind(), dlvp::common::ErrorKind::IoCorrupt);
    }

    // ...and a version-byte flip is caught by header validation.
    dlvp::common::FaultPlan::setGlobal("flip:7.0");
    EXPECT_FALSE(loadTraceFile(t, path));

    dlvp::common::FaultPlan::clearGlobal();
    ASSERT_TRUE(loadTraceFile(t, path));
    EXPECT_EQ(t.size(), orig.size());
    std::remove(path.c_str());
}

TEST(PartitionedTournament, RunsAndCoversAtLeastAsMuch)
{
    sim::Simulator s(sim::baselineCore(), 80000);
    const auto naive = s.run("pdfjs", sim::tournamentConfig());
    const auto part =
        s.run("pdfjs", sim::partitionedTournamentConfig());
    EXPECT_EQ(naive.committedInsts, part.committedInsts);
    // Partitioning frees VTAGE capacity; combined coverage must not
    // collapse (it usually grows on overlap-heavy workloads).
    EXPECT_GT(part.coverage(), naive.coverage() * 0.9);
    EXPECT_GT(part.accuracy(), 0.95);
}

} // namespace
