/**
 * @file
 * Tests for trace serialization and the partitioned tournament
 * extension.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dlvp;
using namespace dlvp::trace;

TEST(TraceIo, RoundTripPreservesEverything)
{
    const auto orig = WorkloadRegistry::build("viterb", 8000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));

    Trace loaded;
    ASSERT_TRUE(loadTrace(loaded, buf));
    EXPECT_EQ(loaded.name, orig.name);
    EXPECT_EQ(loaded.suite, orig.suite);
    ASSERT_EQ(loaded.size(), orig.size());
    for (std::size_t i = 0; i < orig.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, orig[i].pc) << i;
        EXPECT_EQ(loaded[i].cls, orig[i].cls) << i;
        EXPECT_EQ(loaded[i].memAddr, orig[i].memAddr) << i;
        EXPECT_EQ(loaded[i].destValue, orig[i].destValue) << i;
        EXPECT_EQ(loaded[i].numDests, orig[i].numDests) << i;
        EXPECT_EQ(loaded[i].taken, orig[i].taken) << i;
    }
    EXPECT_EQ(loaded.initialImage.numPages(),
              orig.initialImage.numPages());
    EXPECT_EQ(loaded.verifyReplay(), loaded.size())
        << "functional replay must survive the round trip";
}

TEST(TraceIo, LoadedTraceSimulatesIdentically)
{
    const auto orig = WorkloadRegistry::build("crafty", 10000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    Trace loaded;
    ASSERT_TRUE(loadTrace(loaded, buf));

    sim::Simulator s(sim::baselineCore(), 10000);
    const auto a = s.run(orig, sim::dlvpConfig());
    const auto b = s.run(loaded, sim::dlvpConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.vpPredictedLoads, b.vpPredictedLoads);
}

TEST(TraceIo, RejectsGarbage)
{
    std::stringstream buf;
    buf << "this is not a trace file";
    Trace t;
    EXPECT_FALSE(loadTrace(t, buf));
}

TEST(TraceIo, RejectsTruncation)
{
    const auto orig = WorkloadRegistry::build("viterb", 2000);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(orig, buf));
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    Trace t;
    EXPECT_FALSE(loadTrace(t, cut));
}

TEST(TraceIo, FileRoundTrip)
{
    const auto orig = WorkloadRegistry::build("idctrn", 3000);
    const std::string path = "/tmp/dlvp_test_trace.trc";
    ASSERT_TRUE(saveTraceFile(orig, path));
    Trace loaded;
    ASSERT_TRUE(loadTraceFile(loaded, path));
    EXPECT_EQ(loaded.size(), orig.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    Trace t;
    EXPECT_FALSE(loadTraceFile(t, "/nonexistent/path/x.trc"));
}

TEST(PartitionedTournament, RunsAndCoversAtLeastAsMuch)
{
    sim::Simulator s(sim::baselineCore(), 80000);
    const auto naive = s.run("pdfjs", sim::tournamentConfig());
    const auto part =
        s.run("pdfjs", sim::partitionedTournamentConfig());
    EXPECT_EQ(naive.committedInsts, part.committedInsts);
    // Partitioning frees VTAGE capacity; combined coverage must not
    // collapse (it usually grows on overlap-heavy workloads).
    EXPECT_GT(part.coverage(), naive.coverage() * 0.9);
    EXPECT_GT(part.accuracy(), 0.95);
}

} // namespace
