/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace
{

using namespace dlvp;

TEST(Rng, Deterministic)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets)
{
    Rng a(7);
    const auto first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowInRange)
{
    Rng r(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 500; ++i) {
        const auto v = r.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformBounds)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(0.0));
    }
}

} // namespace
