/**
 * @file
 * Figure 1: fraction of dynamic loads that consume a value produced
 * by a store since the prior dynamic instance of that load, split
 * into committed-store conflicts (region (a), avoidable by address
 * prediction) and in-flight-store conflicts (region (b), LSCD
 * territory). X-axis: workloads; the paper reports that ~67% of the
 * conflicts are with previously committed stores.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "trace/profilers.hh"

int
main()
{
    using namespace dlvp;
    sim::Table t("Figure 1: loads consuming a value stored since "
                 "their prior instance");
    t.columns({"workload", "committed_frac", "inflight_frac",
               "total_frac"});
    double committed_sum = 0.0, inflight_sum = 0.0;
    const auto names = trace::WorkloadRegistry::names();
    for (const auto &w : names) {
        const auto trace =
            trace::WorkloadRegistry::build(w, bench::kBenchInsts);
        const auto prof = trace::profileConflicts(trace);
        t.row({w, prof.committedFraction(), prof.inflightFraction(),
               prof.totalFraction()});
        committed_sum += prof.committedFraction();
        inflight_sum += prof.inflightFraction();
        std::fputc('.', stderr);
    }
    std::fputc('\n', stderr);
    const double n = static_cast<double>(names.size());
    const double committed = committed_sum / n;
    const double inflight = inflight_sum / n;
    t.row({std::string("AVERAGE"), committed, inflight,
           committed + inflight});
    t.print(std::cout);
    std::printf("\ncommitted share of all conflicts: %.1f%% "
                "(paper: ~67%% -> addressable by DLVP)\n",
                100.0 * committed / (committed + inflight));
    return 0;
}
