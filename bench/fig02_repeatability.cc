/**
 * @file
 * Figure 2: breakdown of dynamic load instructions according to how
 * often the observed address or value repeats. The paper's headline
 * points: 91% of loads have addresses repeating >= 8 times, 80% have
 * values repeating >= 64 times, and values repeat ~4% more often than
 * addresses on average.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "trace/profilers.hh"

int
main()
{
    using namespace dlvp;
    const auto names = trace::WorkloadRegistry::names();
    std::vector<double> addr_sum(11, 0.0), val_sum(11, 0.0);
    for (const auto &w : names) {
        const auto trace =
            trace::WorkloadRegistry::build(w, bench::kBenchInsts);
        const auto prof = trace::profileRepeatability(trace);
        for (unsigned k = 0; k < 11; ++k) {
            addr_sum[k] += prof.fractionAddrAtLeast[k];
            val_sum[k] += prof.fractionValueAtLeast[k];
        }
        std::fputc('.', stderr);
    }
    std::fputc('\n', stderr);

    sim::Table t("Figure 2: fraction of dynamic loads whose "
                 "address/value repeated >= N times (suite average)");
    t.columns({"repeats>=", "addresses", "values"});
    const double n = static_cast<double>(names.size());
    for (unsigned k = 0; k < 11; ++k)
        t.row({static_cast<long long>(1u << k),
               addr_sum[k] / n, val_sum[k] / n});
    t.print(std::cout);

    std::printf("\npaper anchors: addr>=8 ~ 0.91, value>=64 ~ 0.80\n");
    std::printf("measured:      addr>=8 = %.2f, value>=64 = %.2f\n",
                addr_sum[3] / static_cast<double>(names.size()),
                val_sum[6] / static_cast<double>(names.size()));
    return 0;
}
