/**
 * @file
 * Simulator wall-clock baseline: how fast does one simulated row run?
 *
 * Runs the fig06 workload suite (every registered workload) under
 * {baseline, DLVP, BALCVP, Hermes} and reports per-row wall time,
 * simulated MIPS
 * (micro-ops simulated per wall second, warmup included), and memory-
 * image footprint, plus aggregate MIPS. Writes the machine-readable
 * report (schema "dlvp-perf-v1") so the perf trajectory is recorded
 * across PRs; `tools/perf_check` replays this binary and fails on
 * >10% aggregate-MIPS regressions against a committed BENCH_perf.json.
 *
 * Jobs default to 1 (not all hardware threads) so MIPS numbers are
 * not distorted by co-scheduled sweep jobs; pass --jobs to override.
 *
 * A final pass runs the composed mega traces (mega-mix, mega-storm)
 * at 1M+ uops under interval sampling and appends one row per config
 * with "sampled": true; their detailed-engine MIPS is summarized as
 * summary.mega_mips alongside the serial-cell gate metric.
 *
 *   perf_baseline [--insts N] [--mega-insts N] [--jobs J]
 *                 [--out FILE] [--ref FILE] [--no-batch] [--no-mega]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"

namespace
{

using namespace dlvp;

struct PerfRow
{
    std::string workload;
    std::string config;
    sim::RunPerf perf;
    /** Row ran under interval sampling (mega pass). */
    bool sampled = false;
};

/** First "model name" line from /proc/cpuinfo, or "unknown". */
std::string
cpuModel()
{
    std::ifstream is("/proc/cpuinfo");
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos)
            break;
        auto value = line.substr(colon + 1);
        value.erase(0, value.find_first_not_of(" \t"));
        return value;
    }
    return "unknown";
}

std::string
compilerId()
{
#if defined(__clang__)
    return "clang " + std::string(__clang_version__);
#elif defined(__GNUC__)
    return "gcc " + std::string(__VERSION__);
#else
    return "unknown";
#endif
}

constexpr bool kNativeBuild =
#if defined(DLVP_NATIVE_BUILD)
    true;
#else
    false;
#endif

/** Escape backslashes/quotes for embedding in a JSON string. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c >= 0x20 ? c : ' ');
    }
    return out;
}

/** Batched-column evidence; recorded != false when the pass ran. */
struct BatchEvidence
{
    bool recorded = false;
    double wallMs = 0.0;
    double mips = 0.0;
};

/** Mega sampled-sweep evidence; recorded != false when the pass ran. */
struct MegaEvidence
{
    bool recorded = false;
    std::size_t insts = 0;
    double wallMs = 0.0;
    double mips = 0.0;
};

void
writePerfJson(std::ostream &os, const std::vector<PerfRow> &rows,
              std::size_t insts, unsigned jobs, double total_wall_ms,
              double mips_total, const BatchEvidence &batch,
              const MegaEvidence &mega)
{
    os.precision(12);
    os << "{\n  \"schema\": \"dlvp-perf-v1\",\n"
       << "  \"insts\": " << insts << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       // MIPS only compares within one (machine, compiler, flags)
       // triple: record where this reference was measured so
       // perf_check can warn on cross-host comparisons.
       << "  \"host\": {\"cpu\": \"" << jsonEscape(cpuModel())
       << "\", \"compiler\": \"" << jsonEscape(compilerId())
       << "\", \"native\": " << (kNativeBuild ? "true" : "false")
       << "},\n"
       << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        os << "    {\"workload\": \"" << r.workload
           << "\", \"config\": \"" << r.config
           << "\", \"wall_ms\": " << r.perf.wallMs
           << ", \"mips\": " << r.perf.mips
           << ", \"pages\": " << r.perf.pagesTouched
           << ", \"cycles_skipped\": " << r.perf.cyclesSkipped
           << (r.sampled ? ", \"sampled\": true" : "") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"summary\": {\"total_wall_ms\": " << total_wall_ms
       << ", \"mips_total\": " << mips_total;
    // The gate metric stays the serial per-cell rows above; the
    // batched-column pass is recorded alongside as throughput
    // evidence (sum of per-lane wall over all columns).
    if (batch.recorded)
        os << ", \"batch_wall_ms\": " << batch.wallMs
           << ", \"batch_mips\": " << batch.mips
           << ", \"batch_speedup\": "
           << (mips_total > 0.0 ? batch.mips / mips_total : 0.0);
    // Mega sampled rows are detailed-engine throughput over the
    // sampled intervals only; the fast-forwarded gap instructions are
    // excluded from the MIPS numerator.
    if (mega.recorded)
        os << ", \"mega_insts\": " << mega.insts
           << ", \"mega_wall_ms\": " << mega.wallMs
           << ", \"mega_mips\": " << mega.mips;
    os << "}\n}\n";
}

/** Pull summary.mips_total out of a dlvp-perf-v1 file (no JSON lib). */
double
refMipsTotal(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return 0.0;
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    const auto key = text.find("\"mips_total\":");
    if (key == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + key + std::strlen("\"mips_total\":"),
                       nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dlvp::bench;

    std::size_t insts = kBenchInsts;
    std::size_t mega_insts = 0; // 0 -> derived from insts below
    unsigned jobs = 1;
    std::string out = "BENCH_perf.json";
    std::string ref;
    bool batch_pass = true;
    bool mega_pass = true;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--insts" && i + 1 < argc)
            insts = std::strtoull(argv[++i], nullptr, 10);
        else if (a == "--mega-insts" && i + 1 < argc)
            mega_insts = std::strtoull(argv[++i], nullptr, 10);
        else if (a == "--jobs" && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (a == "--out" && i + 1 < argc)
            out = argv[++i];
        else if (a == "--ref" && i + 1 < argc)
            ref = argv[++i];
        else if (a == "--no-batch")
            batch_pass = false;
        else if (a == "--no-mega")
            mega_pass = false;
        else {
            std::fprintf(stderr,
                         "usage: perf_baseline [--insts N] "
                         "[--mega-insts N] [--jobs J] [--out FILE] "
                         "[--ref FILE] [--no-batch] [--no-mega]\n");
            return 2;
        }
    }
    // The mega pass scales with --insts so the ci_check perf smoke
    // (--insts 30000) stays cheap while the recorded reference uses
    // 1M+-uop composed traces (default 300000 * 4 = 1.2M).
    if (mega_insts == 0)
        mega_insts = insts * 4;

    sim::SweepSpec spec;
    // DLVP plus the registry-zoo entries: the perf gate watches the
    // new accelerators' simulation throughput from the PR they land.
    spec.configs = {{"dlvp", sim::dlvpConfig()},
                    {"balcvp", sim::balcvpConfig()},
                    {"hermes", sim::hermesConfig()}};
    spec.insts = insts;
    spec.core = sim::baselineCore();
    spec.baseline = sim::baselineVp();
    spec.jobs = jobs;
    sim::TraceStore store;
    spec.store = &store;

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = sim::runSweep(spec);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t0;

    std::vector<PerfRow> rows;
    double wall_sum = 0.0;
    for (const auto &r : result.rows) {
        rows.push_back({r.workload, "baseline", r.baselinePerf});
        wall_sum += r.baselinePerf.wallMs;
        for (std::size_t ci = 0; ci < spec.configs.size(); ++ci) {
            rows.push_back({r.workload, spec.configs[ci].name,
                            r.perf[ci]});
            wall_sum += r.perf[ci].wallMs;
        }
    }
    const double total_uops =
        static_cast<double>(insts) * static_cast<double>(rows.size());
    const double mips_total =
        wall_sum > 0.0 ? total_uops / (wall_sum * 1e3) : 0.0;

    sim::Table t("Simulation performance baseline (fig06 suite, "
                 "baseline + zoo)");
    t.columns({"workload", "base_mips", "dlvp_mips", "balcvp_mips",
               "hermes_mips", "pages"});
    t.precision(2);
    for (const auto &r : result.rows)
        t.row({r.workload, r.baselinePerf.mips, r.perf[0].mips,
               r.perf[1].mips, r.perf[2].mips,
               static_cast<long long>(r.perf[0].pagesTouched)});
    t.print(std::cout);
    std::printf("\nrows: %zu x %zu uops   row wall sum: %.0f ms   "
                "elapsed: %.0f ms   aggregate: %.3f MIPS\n",
                rows.size(), insts, wall_sum, elapsed.count(),
                mips_total);

    if (!ref.empty()) {
        const double ref_mips = refMipsTotal(ref);
        if (ref_mips > 0.0)
            std::printf("vs %s: %.3f MIPS -> %.2fx\n", ref.c_str(),
                        ref_mips, mips_total / ref_mips);
        else
            std::fprintf(stderr, "warn: no mips_total in %s\n",
                         ref.c_str());
    }

    // Batched-column evidence pass: the same grid, scheduled as one
    // lockstep job per workload (ROADMAP item 3's ">2x grid
    // throughput" target is measured on this number).
    BatchEvidence batch;
    if (batch_pass) {
        auto bspec = spec;
        bspec.batch = true;
        const auto bresult = sim::runSweep(bspec);
        double bwall = 0.0;
        bool all_ok = true;
        for (const auto &r : bresult.rows) {
            if (!r.baselineOutcome.ok())
                all_ok = false;
            bwall += r.baselinePerf.wallMs;
            for (std::size_t ci = 0; ci < bspec.configs.size();
                 ++ci) {
                if (!r.outcomes[ci].ok())
                    all_ok = false;
                bwall += r.perf[ci].wallMs;
            }
        }
        if (all_ok && bwall > 0.0) {
            batch.recorded = true;
            batch.wallMs = bwall;
            batch.mips = total_uops / (bwall * 1e3);
            std::printf("batched columns: wall sum %.0f ms, "
                        "aggregate %.3f MIPS (%.2fx vs serial "
                        "cells)\n",
                        bwall, batch.mips,
                        mips_total > 0.0 ? batch.mips / mips_total
                                         : 0.0);
        } else {
            std::fprintf(stderr,
                         "warn: batched pass incomplete; no "
                         "batch_mips recorded\n");
        }
    }

    // Mega sampled pass: the composed 1M+-uop traces run under the
    // default interval-sampling spec (--sample), one row per config,
    // so the perf trajectory records streaming+sampling throughput at
    // a scale the full-detail rows never reach.
    MegaEvidence mega;
    if (mega_pass) {
        auto mspec = spec;
        mspec.workloads = {"mega-mix", "mega-storm"};
        mspec.insts = mega_insts;
        mspec.batch = false;
        mspec.sample.enabled = true;
        sim::TraceStore mstore;
        mspec.store = &mstore;
        const auto mresult = sim::runSweep(mspec);
        double mwall = 0.0;
        double muops = 0.0;
        bool all_ok = true;
        for (const auto &r : mresult.rows) {
            if (!r.baselineOutcome.ok())
                all_ok = false;
            rows.push_back({r.workload, "baseline", r.baselinePerf,
                            true});
            mwall += r.baselinePerf.wallMs;
            muops += r.baselinePerf.mips * r.baselinePerf.wallMs * 1e3;
            for (std::size_t ci = 0; ci < mspec.configs.size();
                 ++ci) {
                if (!r.outcomes[ci].ok())
                    all_ok = false;
                rows.push_back({r.workload, mspec.configs[ci].name,
                                r.perf[ci], true});
                mwall += r.perf[ci].wallMs;
                muops += r.perf[ci].mips * r.perf[ci].wallMs * 1e3;
            }
        }
        if (all_ok && mwall > 0.0) {
            mega.recorded = true;
            mega.insts = mega_insts;
            mega.wallMs = mwall;
            mega.mips = muops / (mwall * 1e3);
            std::printf("mega sampled rows: %zu uops/trace, wall sum "
                        "%.0f ms, detailed %.3f MIPS\n",
                        mega_insts, mwall, mega.mips);
        } else {
            std::fprintf(stderr, "warn: mega sampled pass incomplete; "
                                 "no mega_mips recorded\n");
        }
    }

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
        return 1;
    }
    writePerfJson(os, rows, insts, jobs, wall_sum, mips_total, batch,
                  mega);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
}
