/**
 * @file
 * Shared plumbing for the per-figure/table bench harnesses, built on
 * the parallel sweep engine (sim/sweep.hh): baseline + N configs × M
 * workloads become jobs on a thread pool (DLVP_JOBS env var, default
 * all hardware threads), with per-row output bit-identical to a
 * serial run. Traces are built once in the shared store and evicted
 * as soon as a workload's last job finishes to bound memory.
 *
 * Set DLVP_BENCH_JSON=<path> to also write the machine-readable
 * sweep report (schema dlvp-sweep-v1) for trajectory tracking.
 */

#ifndef DLVP_BENCH_BENCH_COMMON_HH
#define DLVP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/core_stats.hh"
#include "sim/configs.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/workloads.hh"

namespace dlvp::bench
{

/** Instructions per workload for the experiment harnesses. */
inline constexpr std::size_t kBenchInsts = 300000;

/** Named configuration to evaluate. */
using Config = sim::SweepConfig;

/** One workload's results across all configurations. */
using WorkloadRow = sim::SweepRow;

/**
 * Run baseline + configs over @p workloads (all registered workloads
 * if empty) in parallel. Progress is reported as "k/N" lines on
 * stderr from an atomic completed-job counter — safe under
 * concurrency, unlike the old per-workload dot.
 *
 * Columns run batched by default (@p batch): one lockstep job per
 * workload streams the trace once through all lanes (sim/
 * batch_runner.hh) with bit-identical stats. DLVP_BATCH=0/1
 * overrides the default for A/B throughput measurements.
 */
inline std::vector<WorkloadRow>
runSuite(const std::vector<Config> &configs,
         std::vector<std::string> workloads = {},
         std::size_t insts = kBenchInsts, bool batch = true)
{
    sim::SweepSpec spec;
    spec.configs = configs;
    spec.workloads = std::move(workloads);
    spec.insts = insts;
    spec.core = sim::baselineCore();
    spec.baseline = sim::baselineVp();
    if (const char *env = std::getenv("DLVP_BATCH"))
        batch = env[0] != '0';
    spec.batch = batch;
    spec.progress = [](std::size_t done, std::size_t total) {
        // One fputs per event: atomic at the stdio level, and the
        // count comes from the engine's shared counter, so lines are
        // monotonic per worker and max out at total/total.
        char buf[64];
        std::snprintf(buf, sizeof buf, "\r%zu/%zu jobs", done, total);
        std::fputs(buf, stderr);
        if (done == total)
            std::fputc('\n', stderr);
        std::fflush(stderr);
    };
    auto result = sim::runSweep(spec);
    // Grid-column amortization factor: lanes sharing one trace
    // fetch/decode/functional-replay per column (1.0 = serial cells).
    {
        double lanes_sum = 0.0;
        for (const auto &row : result.rows)
            lanes_sum += row.batch ? row.lanes : 1.0;
        const double factor =
            result.rows.empty()
                ? 1.0
                : lanes_sum / static_cast<double>(result.rows.size());
        std::fprintf(stderr,
                     "batch: %s, column amortization factor %.1fx "
                     "(mean lanes per trace stream)\n",
                     spec.batch ? "on" : "off", factor);
    }
    // Per-job isolation (DESIGN.md §9): a failed cell is reported and
    // excluded from the means below, not fatal to the whole figure.
    if (result.failedJobs() != 0) {
        for (const auto &row : result.rows) {
            if (!row.baselineOutcome.ok())
                std::fprintf(stderr, "warn: %s/baseline: %s\n",
                             row.workload.c_str(),
                             row.baselineOutcome.error.c_str());
            for (std::size_t ci = 0; ci < row.outcomes.size(); ++ci)
                if (!row.outcomes[ci].ok())
                    std::fprintf(
                        stderr, "warn: %s/%s: %s\n",
                        row.workload.c_str(),
                        result.configNames[ci].c_str(),
                        row.outcomes[ci].error.c_str());
        }
        std::fprintf(stderr, "warn: %zu/%zu jobs failed\n",
                     result.failedJobs(),
                     result.rows.size() * (configs.size() + 1));
    }
    if (const char *path = std::getenv("DLVP_BENCH_JSON")) {
        std::ofstream os(path);
        if (os)
            sim::writeSweepJson(os, result);
        else
            std::fprintf(stderr,
                         "warn: cannot write DLVP_BENCH_JSON=%s\n",
                         path);
    }
    return std::move(result.rows);
}

/** Arithmetic-mean speedup of config @p idx across completed rows. */
inline double
meanSpeedup(const std::vector<WorkloadRow> &rows, std::size_t idx)
{
    std::vector<double> v;
    for (const auto &r : rows)
        if (r.cellOk(idx))
            v.push_back(sim::speedup(r.baseline, r.results[idx]));
    return sim::amean(v);
}

/** Arithmetic-mean of an arbitrary per-row metric. */
inline double
meanOf(const std::vector<WorkloadRow> &rows,
       const std::function<double(const WorkloadRow &)> &f)
{
    std::vector<double> v;
    for (const auto &r : rows)
        v.push_back(f(r));
    return sim::amean(v);
}

} // namespace dlvp::bench

#endif // DLVP_BENCH_BENCH_COMMON_HH
