/**
 * @file
 * Shared plumbing for the per-figure/table bench harnesses: run a set
 * of configurations over the workload suite (building each trace once
 * and evicting it afterwards to bound memory), and collect speedups.
 */

#ifndef DLVP_BENCH_BENCH_COMMON_HH
#define DLVP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/core_stats.hh"
#include "sim/configs.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/workloads.hh"

namespace dlvp::bench
{

/** Instructions per workload for the experiment harnesses. */
inline constexpr std::size_t kBenchInsts = 300000;

/** Named configuration to evaluate. */
struct Config
{
    std::string name;
    core::VpConfig vp;
};

/** One workload's results across all configurations. */
struct WorkloadRow
{
    std::string workload;
    core::CoreStats baseline;
    std::vector<core::CoreStats> results; ///< one per config
};

/**
 * Run baseline + configs over @p workloads (all registered workloads
 * if empty). Prints a progress dot per workload on stderr.
 */
inline std::vector<WorkloadRow>
runSuite(const std::vector<Config> &configs,
         std::vector<std::string> workloads = {},
         std::size_t insts = kBenchInsts)
{
    if (workloads.empty())
        workloads = trace::WorkloadRegistry::names();
    sim::Simulator simulator(sim::baselineCore(), insts);
    std::vector<WorkloadRow> rows;
    for (const auto &w : workloads) {
        WorkloadRow row;
        row.workload = w;
        row.baseline = simulator.run(w, sim::baselineVp());
        for (const auto &c : configs)
            row.results.push_back(simulator.run(w, c.vp));
        simulator.evict(w);
        rows.push_back(std::move(row));
        std::fputc('.', stderr);
        std::fflush(stderr);
    }
    std::fputc('\n', stderr);
    return rows;
}

/** Arithmetic-mean speedup of config @p idx across rows. */
inline double
meanSpeedup(const std::vector<WorkloadRow> &rows, std::size_t idx)
{
    std::vector<double> v;
    for (const auto &r : rows)
        v.push_back(sim::speedup(r.baseline, r.results[idx]));
    return sim::amean(v);
}

/** Arithmetic-mean of an arbitrary per-row metric. */
inline double
meanOf(const std::vector<WorkloadRow> &rows,
       const std::function<double(const WorkloadRow &)> &f)
{
    std::vector<double> v;
    for (const auto &r : rows)
        v.push_back(f(r));
    return sim::amean(v);
}

} // namespace dlvp::bench

#endif // DLVP_BENCH_BENCH_COMMON_HH
