/**
 * @file
 * Google-benchmark microbenchmarks of the predictor structures
 * themselves: lookup/train throughput of PAP, CAP, VTAGE, TAGE, and
 * the probe path. These bound the simulator's own hot loops (useful
 * when extending the library) — they are not paper experiments.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "pred/cap.hh"
#include "pred/pap.hh"
#include "pred/tage.hh"
#include "pred/vtage.hh"
#include "trace/instruction.hh"

namespace
{

using namespace dlvp;

void
BM_PapPredictTrain(benchmark::State &state)
{
    pred::Pap pap({});
    Rng rng(1);
    std::uint64_t hist = 0;
    for (auto _ : state) {
        const Addr group = (rng.next64() & 0xff) << 4;
        const Addr addr = 0x1000 + (rng.next64() & 0xffff);
        benchmark::DoNotOptimize(pap.predict(group, 0, hist));
        pap.train(group, 0, hist, addr, 8, 0);
        hist = (hist << 1) ^ (addr & 1);
    }
}
BENCHMARK(BM_PapPredictTrain);

void
BM_CapPredictTrain(benchmark::State &state)
{
    pred::Cap cap(pred::CapParams{});
    Rng rng(2);
    for (auto _ : state) {
        const Addr pc = 0x400000 + ((rng.next64() & 0xff) << 2);
        const Addr addr = 0x1000 + (rng.next64() & 0xffff);
        benchmark::DoNotOptimize(cap.predict(pc));
        cap.train(pc, addr);
    }
}
BENCHMARK(BM_CapPredictTrain);

void
BM_VtagePredictTrain(benchmark::State &state)
{
    pred::Vtage vtage({});
    trace::TraceInst inst;
    inst.cls = trace::OpClass::Load;
    inst.loadKind = trace::LoadKind::Simple;
    inst.numDests = 1;
    Rng rng(3);
    for (auto _ : state) {
        inst.pc = 0x400000 + ((rng.next64() & 0xff) << 2);
        const std::uint64_t ghr = rng.next64();
        benchmark::DoNotOptimize(vtage.predict(inst, 0, ghr));
        vtage.train(inst, 0, ghr, rng.next64() & 0xff, false, false);
    }
}
BENCHMARK(BM_VtagePredictTrain);

void
BM_TagePredictUpdate(benchmark::State &state)
{
    pred::Tage tage({});
    Rng rng(4);
    std::uint64_t ghr = 0;
    for (auto _ : state) {
        const Addr pc = 0x400000 + ((rng.next64() & 0x3f) << 2);
        const bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(tage.predict(pc, ghr));
        tage.update(pc, ghr, taken);
        ghr = (ghr << 1) | (taken ? 1 : 0);
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_CacheProbe(benchmark::State &state)
{
    mem::Cache l1({"l1d", 64 * 1024, 4, 64, 2});
    Rng rng(5);
    for (int i = 0; i < 2048; ++i)
        l1.fill(rng.next64() & 0xffffff);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            l1.probe(rng.next64() & 0xffffff, -1));
}
BENCHMARK(BM_CacheProbe);

} // namespace

BENCHMARK_MAIN();
