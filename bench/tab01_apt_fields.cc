/**
 * @file
 * Table 1: fields of the address predictor (APT) entry and the
 * resulting storage budget. Prints the field layout and audits the
 * "modest 8KB prediction table" claim from the abstract.
 */

#include <cstdio>
#include <iostream>

#include "pred/pap.hh"
#include "sim/report.hh"

int
main()
{
    using namespace dlvp;
    pred::PapParams armv8;
    pred::PapParams armv7 = armv8;
    armv7.addrBits = 32;

    sim::Table t("Table 1: APT entry fields");
    t.columns({"field", "bits", "notes"});
    t.row({std::string("tag"),
           static_cast<long long>(armv8.tagBits),
           std::string("XOR of load PC and folded load-path history")});
    t.row({std::string("memory address"), static_cast<long long>(49),
           std::string("32 (ARMv7) or 49 (ARMv8)")});
    t.row({std::string("confidence"), 2LL,
           std::string("FPC, probability vector {1, 1/2, 1/4}")});
    t.row({std::string("size"), 2LL,
           std::string("bytes per destination register")});
    t.row({std::string("cache way"), 2LL,
           std::string("optional; log2(L1 associativity)")});
    t.print(std::cout);

    pred::Pap pap8(armv8);
    pred::Pap pap7(armv7);
    std::printf("\nAPT: %u entries, direct-mapped\n",
                1u << armv8.tableBits);
    std::printf("total budget ARMv7: %llu bits (%.1f KB)\n",
                static_cast<unsigned long long>(pap7.storageBits()),
                static_cast<double>(pap7.storageBits()) / 8192.0);
    std::printf("total budget ARMv8: %llu bits (%.1f KB)\n",
                static_cast<unsigned long long>(pap8.storageBits()),
                static_cast<double>(pap8.storageBits()) / 8192.0);
    std::printf("paper (Table 4): 50k bits (ARMv7) / 67k bits "
                "(ARMv8); abstract: 'a modest 8KB prediction table'\n");
    return 0;
}
