/**
 * @file
 * Extension bench (beyond the paper's figures): the full predictor
 * zoo, standalone and in-core.
 *
 * Standalone (Figure 4 methodology, both sides of the coin):
 *   - address predictors: PAP, CAP(24), computation-based stride AP
 *   - value predictors: LVP, VTAGE, D-VTAGE — D-VTAGE is the §2.1
 *     variant the paper discusses but does not evaluate; its stride
 *     deltas cover the walker workloads value prediction otherwise
 *     misses, at the cost of the speculative last-value window.
 *
 * In-core: DLVP vs stride-AP-DLVP vs VTAGE vs D-VTAGE speedups on a
 * representative sample.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "sim/addr_pred_driver.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    const std::vector<std::string> sample = {
        "mcf",  "crafty", "perlbmk", "aifirf",  "nat",
        "hmmer", "bzip2",  "omnetpp", "viterb", "pdfjs"};

    sim::AddrPredResult pap, cap, stride, lvp, vtage, dvtage;
    auto acc = [](sim::AddrPredResult &dst,
                  const sim::AddrPredResult &r) {
        dst.loads += r.loads;
        dst.predicted += r.predicted;
        dst.correct += r.correct;
    };
    for (const auto &w : sample) {
        const auto t = trace::WorkloadRegistry::build(w, 150000);
        acc(pap, sim::drivePap(t));
        pred::CapParams cp;
        cp.confThreshold = 24;
        acc(cap, sim::driveCap(t, cp));
        acc(stride, sim::driveStrideAp(t, pred::StrideApParams{}));
        acc(lvp, sim::driveValuePred(t, sim::ValuePredKind::Lvp));
        acc(vtage, sim::driveValuePred(t, sim::ValuePredKind::Vtage));
        acc(dvtage,
            sim::driveValuePred(t, sim::ValuePredKind::Dvtage));
        std::fputc('.', stderr);
    }
    std::fputc('\n', stderr);

    sim::Table s("extension: standalone predictor zoo "
                 "(sample aggregate)");
    s.columns({"predictor", "kind", "coverage", "accuracy"});
    s.row({std::string("PAP (conf 8)"), std::string("address"),
           pap.coverage(), pap.accuracy()});
    s.row({std::string("CAP (conf 24)"), std::string("address"),
           cap.coverage(), cap.accuracy()});
    s.row({std::string("stride AP"), std::string("address"),
           stride.coverage(), stride.accuracy()});
    s.row({std::string("LVP"), std::string("value"), lvp.coverage(),
           lvp.accuracy()});
    s.row({std::string("VTAGE"), std::string("value"),
           vtage.coverage(), vtage.accuracy()});
    s.row({std::string("D-VTAGE"), std::string("value"),
           dvtage.coverage(), dvtage.accuracy()});
    s.print(std::cout);

    const std::vector<Config> configs = {
        {"DLVP (PAP)", sim::dlvpConfig()},
        {"DLVP (stride AP)", sim::strideDlvpConfig()},
        {"VTAGE", sim::vtageConfig()},
        {"D-VTAGE", sim::dvtageConfig()},
    };
    const auto rows = runSuite(configs, sample, 150000);
    sim::Table t("extension: in-core comparison (sample)");
    t.columns({"workload", "dlvp", "stride_dlvp", "vtage", "dvtage"});
    for (const auto &r : rows)
        t.row({r.workload, sim::speedup(r.baseline, r.results[0]),
               sim::speedup(r.baseline, r.results[1]),
               sim::speedup(r.baseline, r.results[2]),
               sim::speedup(r.baseline, r.results[3])});
    t.row({std::string("AVERAGE"), meanSpeedup(rows, 0),
           meanSpeedup(rows, 1), meanSpeedup(rows, 2),
           meanSpeedup(rows, 3)});
    t.print(std::cout);
    std::printf("\nexpected shape: PAP leads the address predictors; "
                "D-VTAGE >= VTAGE (stride deltas add the walker "
                "workloads); DLVP leads in-core\n");
    return 0;
}
