/**
 * @file
 * Table 3: the benchmark suite. Prints every registered workload with
 * its suite, recipe description, and instruction mix — the analogue
 * of the paper's application list (§4.1).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    sim::Table t("Table 3: applications used in the evaluation "
                 "(synthetic analogues; see DESIGN.md)");
    t.columns({"workload", "suite", "loads%", "stores%", "branches%",
               "multi-dest%", "description"});
    t.precision(1);
    for (const auto &spec : trace::WorkloadRegistry::all()) {
        const auto trace =
            trace::WorkloadRegistry::build(spec.name, 60000);
        const auto mix = trace.mix();
        const double n = static_cast<double>(mix.total);
        t.row({spec.name, spec.suite,
               100.0 * static_cast<double>(mix.loads) / n,
               100.0 * static_cast<double>(mix.stores) / n,
               100.0 * static_cast<double>(mix.branches) / n,
               mix.loads ? 100.0 *
                               static_cast<double>(mix.multiDestLoads) /
                               static_cast<double>(mix.loads)
                         : 0.0,
               spec.description});
        std::fputc('.', stderr);
    }
    std::fputc('\n', stderr);
    t.print(std::cout);
    std::printf("\n%zu workloads across 5 suites (paper: SPEC2K, "
                "SPEC2K6, EEMBC, Linpack/media/browser, Javascript)\n",
                trace::WorkloadRegistry::all().size());
    return 0;
}
