/**
 * @file
 * §3.2.1 completion: the three VPE design options as *timing* models,
 * alongside Table 2's area/energy comparison.
 *
 *   design #1  share the 8 PRF write ports (predictions dropped when
 *              execution writebacks saturate them)
 *   design #2  add write ports: same timing as #3, Table 2's cost
 *   design #3  dedicated 32-entry PVT (the paper's choice)
 *
 * The paper argues design #1 "may not be compelling for high
 * performance cores" — this harness quantifies the performance left
 * on the table, and the PVT-size sweep shows how small the dedicated
 * structure can be.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    auto d1 = sim::dlvpConfig();
    d1.vpeDesign = core::VpeDesign::PortArbitration;
    auto d3 = sim::dlvpConfig();
    auto pvt8 = sim::dlvpConfig();
    pvt8.pvtSize = 8;
    auto pvt16 = sim::dlvpConfig();
    pvt16.pvtSize = 16;
    auto pvt64 = sim::dlvpConfig();
    pvt64.pvtSize = 64;

    const std::vector<Config> configs = {
        {"design#1 (port arb)", d1},
        {"design#3 PVT=8", pvt8},
        {"design#3 PVT=16", pvt16},
        {"design#3 PVT=32 (paper)", d3},
        {"design#3 PVT=64", pvt64},
    };
    const std::vector<std::string> sample = {
        "mcf",     "perlbmk", "aifirf", "astar",
        "omnetpp", "pdfjs",   "dromaeo"};
    const auto rows = runSuite(configs, sample, 200000);

    sim::Table t("SS3.2.1: VPE design options (sample averages)");
    t.columns({"design", "avg_speedup", "avg_coverage",
               "drops_per_kilo_pred"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        double drops = 0, preds = 0;
        for (const auto &r : rows) {
            drops += static_cast<double>(r.results[i].pvtFullDrops +
                                         r.results[i].prfPortDrops);
            preds += static_cast<double>(
                r.results[i].vpPredictedLoads);
        }
        t.row({configs[i].name, meanSpeedup(rows, i),
               meanOf(rows,
                      [i](const WorkloadRow &r) {
                          return r.results[i].coverage();
                      }),
               preds > 0 ? 1000.0 * drops / preds : 0.0});
    }
    t.print(std::cout);
    std::printf("\nexpected: design #1 loses predictions to port "
                "conflicts under load; the 32-entry PVT is already "
                "at the knee (\"this scenario is almost never "
                "encountered\").\nTable 2's area/energy side of this "
                "choice is printed by tab02_vpe_designs.\n");
    return 0;
}
