/**
 * @file
 * Table 4: the baseline core configuration and per-predictor storage
 * budgets. Prints the modeled configuration and audits each
 * predictor's bit budget against the paper's numbers.
 */

#include <cstdio>
#include <iostream>

#include "pred/cap.hh"
#include "pred/ittage.hh"
#include "pred/pap.hh"
#include "pred/tage.hh"
#include "pred/vtage.hh"
#include "sim/configs.hh"
#include "sim/report.hh"

int
main()
{
    using namespace dlvp;
    const auto p = sim::baselineCore();

    sim::Table t("Table 4: baseline core configuration");
    t.columns({"parameter", "value"});
    const auto row = [&t](const char *k, const std::string &v) {
        t.row({std::string(k), v});
    };
    row("fetch-rename width", "4 instr/cycle");
    row("issue-commit width",
        "8 instr/cycle (2 load-store + 6 generic lanes)");
    row("ROB/IQ/LDQ/STQ",
        std::to_string(p.robSize) + "/" + std::to_string(p.iqSize) +
            "/" + std::to_string(p.ldqSize) + "/" +
            std::to_string(p.stqSize));
    row("physical RF", std::to_string(p.numPhysRegs));
    row("fetch-to-execute",
        std::to_string(p.fetchToDispatch + 2) + " cycles");
    row("L1 (I/D)", "64KB each, 4-way, 1/2-cycle");
    row("L2", "512KB, 8-way, 16-cycle");
    row("L3", "8MB, 16-way, 32-cycle");
    row("memory", std::to_string(p.memory.memLatency) + "-cycle");
    row("TLB", "512-entry, 8-way");
    row("prefetchers", "stride-based (L1)");
    row("branch predictors", "TAGE + ITTAGE + 16-entry RAS");
    row("MDP", "Alpha 21264-style store-wait table");
    t.print(std::cout);

    pred::Tage tage({});
    pred::Ittage ittage({});
    pred::Pap pap({});
    pred::Cap cap(pred::CapParams{});
    pred::Vtage vtage({});
    sim::Table b("predictor storage budgets (bits)");
    b.columns({"predictor", "modeled", "paper"});
    b.row({std::string("PAP/APT (ARMv8)"),
           static_cast<long long>(pap.storageBits()),
           std::string("67k")});
    b.row({std::string("CAP (ARMv8)"),
           static_cast<long long>(cap.storageBits()),
           std::string("95k")});
    b.row({std::string("VTAGE"),
           static_cast<long long>(vtage.storageBits()),
           std::string("62.3k")});
    b.row({std::string("TAGE"),
           static_cast<long long>(tage.storageBits()),
           std::string("32KB-class")});
    b.row({std::string("ITTAGE"),
           static_cast<long long>(ittage.storageBits()),
           std::string("32KB-class")});
    b.print(std::cout);
    return 0;
}
