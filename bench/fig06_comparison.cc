/**
 * @file
 * Figure 6: the paper's main result — CAP vs VTAGE vs DLVP across
 * the workload suite.
 *   6a: per-workload speedup over the no-value-prediction baseline
 *   6b: per-workload coverage
 *   6c: total core energy normalized to baseline
 *   6d: predictor array area / read / write energy normalized to PAP
 * Also prints the §3.2.2 side claims (PAQ drop rate, way
 * mispredictions) the text reports.
 *
 * Paper anchors: DLVP +4.8% avg (max +71% on perlbmk), VTAGE +2.1%,
 * CAP +2.3%; coverage DLVP 31.1% vs VTAGE 29.6%; DLVP core energy on
 * par with VTAGE.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "energy/core_energy.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    // The paper's three contenders plus the registry-zoo entries;
    // tables 6c/6d keep the paper's original three-way framing.
    const std::vector<Config> configs = {
        {"CAP", sim::capConfig()},
        {"VTAGE", sim::vtageConfig()},
        {"DLVP", sim::dlvpConfig()},
        {"BALCVP", sim::balcvpConfig()},
        {"Hermes", sim::hermesConfig()},
    };
    const auto rows = runSuite(configs);

    sim::Table a("Figure 6a/6b: speedup and coverage per workload "
                 "(+ zoo)");
    a.columns({"workload", "cap_spd", "vtage_spd", "dlvp_spd",
               "balcvp_spd", "hermes_spd", "cap_cov", "vtage_cov",
               "dlvp_cov"});
    for (const auto &r : rows)
        a.row({r.workload, sim::speedup(r.baseline, r.results[0]),
               sim::speedup(r.baseline, r.results[1]),
               sim::speedup(r.baseline, r.results[2]),
               sim::speedup(r.baseline, r.results[3]),
               sim::speedup(r.baseline, r.results[4]),
               r.results[0].coverage(), r.results[1].coverage(),
               r.results[2].coverage()});
    // Per-suite rows (the paper's figure groups the x-axis by suite).
    for (const char *suite :
         {"SPEC2K", "SPEC2K6", "EEMBC", "Other", "JS"}) {
        std::vector<std::vector<double>> s(configs.size());
        for (const auto &r : rows) {
            if (trace::WorkloadRegistry::find(r.workload).suite !=
                suite)
                continue;
            for (std::size_t ci = 0; ci < configs.size(); ++ci)
                s[ci].push_back(
                    sim::speedup(r.baseline, r.results[ci]));
        }
        if (!s[0].empty())
            a.row({std::string("  avg:") + suite, sim::amean(s[0]),
                   sim::amean(s[1]), sim::amean(s[2]),
                   sim::amean(s[3]), sim::amean(s[4]),
                   std::string(""), std::string(""),
                   std::string("")});
    }
    a.row({std::string("AVERAGE"), meanSpeedup(rows, 0),
           meanSpeedup(rows, 1), meanSpeedup(rows, 2),
           meanSpeedup(rows, 3), meanSpeedup(rows, 4),
           meanOf(rows, [](const WorkloadRow &r) {
               return r.results[0].coverage();
           }),
           meanOf(rows, [](const WorkloadRow &r) {
               return r.results[1].coverage();
           }),
           meanOf(rows, [](const WorkloadRow &r) {
               return r.results[2].coverage();
           })});
    a.print(std::cout);

    sim::Table c("Figure 6c: total core energy normalized to "
                 "baseline");
    c.columns({"workload", "cap", "vtage", "dlvp"});
    double esum[3] = {0, 0, 0};
    for (const auto &r : rows) {
        const double base = energy::coreEnergy(r.baseline);
        double e[3];
        for (int i = 0; i < 3; ++i) {
            e[i] = energy::coreEnergy(r.results[i]) / base;
            esum[i] += e[i];
        }
        c.row({r.workload, e[0], e[1], e[2]});
    }
    const double nrows = static_cast<double>(rows.size());
    c.row({std::string("AVERAGE"), esum[0] / nrows,
           esum[1] / nrows, esum[2] / nrows});
    c.print(std::cout);

    const auto pap = energy::papArrayCosts();
    const auto cap = energy::capArrayCosts();
    const auto vt = energy::vtageArrayCosts();
    sim::Table d("Figure 6d: predictor array area/energy normalized "
                 "to PAP");
    d.columns({"predictor", "area", "read_energy", "write_energy"});
    d.row({std::string("PAP"), 1.0, 1.0, 1.0});
    d.row({std::string("CAP"), cap.area / pap.area,
           cap.readEnergy / pap.readEnergy,
           cap.writeEnergy / pap.writeEnergy});
    d.row({std::string("VTAGE"), vt.area / pap.area,
           vt.readEnergy / pap.readEnergy,
           vt.writeEnergy / pap.writeEnergy});
    d.print(std::cout);

    // §3.2.2 side claims.
    std::uint64_t paq_allocs = 0, paq_drops = 0, probes = 0,
                  way_miss = 0;
    for (const auto &r : rows) {
        paq_allocs += r.results[2].paqAllocs;
        paq_drops += r.results[2].paqDrops;
        probes += r.results[2].probes;
        way_miss += r.results[2].wayMispredicts;
    }
    std::printf("\nDLVP PAQ drop rate: %.3f%% of allocations "
                "(paper: <0.1%%)\n",
                paq_allocs ? 100.0 * static_cast<double>(paq_drops) /
                                 static_cast<double>(paq_allocs)
                           : 0.0);
    std::printf("DLVP way mispredictions: %.4f%% of probes "
                "(paper: almost never)\n",
                probes ? 100.0 * static_cast<double>(way_miss) /
                             static_cast<double>(probes)
                       : 0.0);
    std::printf("\npaper anchors: DLVP +4.8%% avg / VTAGE +2.1%% / "
                "CAP +2.3%%; coverage DLVP 31.1%% vs VTAGE 29.6%%\n");
    return 0;
}
