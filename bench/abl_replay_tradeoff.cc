/**
 * @file
 * The §5.2.4 future-work experiment the paper leaves open:
 *
 *   "To truly harvest the benefits of replay as a recovery mechanism,
 *    one can trade accuracy for higher coverage, and then, identify
 *    the sweet spot at which maximum performance can be achieved."
 *
 * We sweep PAP's confidence requirement (via the FPC probability
 * vector) under both recovery mechanisms. Under flushes, lower
 * confidence is punished; under (oracle) replay, the misprediction
 * cost collapses, so the sweet spot moves toward lower confidence /
 * higher coverage — exactly the paper's conjecture.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    struct ConfPoint
    {
        const char *name;
        std::vector<double> probs;
        double obs;
    };
    const ConfPoint points[] = {
        {"conf~1", {1.0}, 1},
        {"conf~3", {1.0, 1.0, 1.0}, 3},
        {"conf~8 (paper)", {1.0, 0.5, 0.25}, 7},
        {"conf~13", {1.0, 0.25, 0.125}, 13},
    };

    std::vector<Config> configs;
    for (const auto &pt : points) {
        auto flush = sim::dlvpConfig();
        flush.pap.confProbs = pt.probs;
        configs.push_back({std::string(pt.name) + "/flush", flush});
        auto replay = flush;
        replay.recovery = core::RecoveryMode::OracleReplay;
        configs.push_back({std::string(pt.name) + "/replay", replay});
    }

    const std::vector<std::string> sample = {
        "mcf", "perlbmk", "aifirf", "omnetpp", "bzip2", "vpr",
        "dromaeo", "astar"};
    const auto rows = runSuite(configs, sample, 150000);

    sim::Table t("SS5.2.4 future work: accuracy-for-coverage "
                 "trade-off under flush vs replay recovery");
    t.columns({"confidence", "flush_speedup", "replay_speedup",
               "coverage", "accuracy"});
    double best_flush = 0, best_replay = 0;
    std::size_t best_flush_i = 0, best_replay_i = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const double f = meanSpeedup(rows, 2 * i);
        const double r = meanSpeedup(rows, 2 * i + 1);
        if (f > best_flush) {
            best_flush = f;
            best_flush_i = i;
        }
        if (r > best_replay) {
            best_replay = r;
            best_replay_i = i;
        }
        t.row({std::string(points[i].name), f, r,
               meanOf(rows,
                      [i](const WorkloadRow &w) {
                          return w.results[2 * i].coverage();
                      }),
               meanOf(rows, [i](const WorkloadRow &w) {
                   return w.results[2 * i].accuracy();
               })});
    }
    t.print(std::cout);
    std::printf("\nsweet spots: flush at %s, replay at %s "
                "(the paper conjectures replay's moves toward lower "
                "confidence)\n",
                points[best_flush_i].name, points[best_replay_i].name);
    return 0;
}
