/**
 * @file
 * Figure 9: selected benchmarks where speedup does not correlate
 * with coverage (bzip2, pdfjs, gcc, soplex, avmshell), including the
 * second-order TLB effects of DLVP probing the data cache twice.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    const std::vector<Config> configs = {
        {"VTAGE", sim::vtageConfig()},
        {"DLVP", sim::dlvpConfig()},
    };
    const auto rows = runSuite(
        configs, {"bzip2", "pdfjs", "gcc", "soplex", "avmshell"});

    sim::Table t("Figure 9: speedup vs coverage decorrelation");
    t.columns({"workload", "vtage_spd", "dlvp_spd", "vtage_cov",
               "dlvp_cov", "vtage_acc", "dlvp_acc", "base_tlb_miss",
               "dlvp_tlb_miss"});
    for (const auto &r : rows)
        t.row({r.workload, sim::speedup(r.baseline, r.results[0]),
               sim::speedup(r.baseline, r.results[1]),
               r.results[0].coverage(), r.results[1].coverage(),
               r.results[0].accuracy(), r.results[1].accuracy(),
               static_cast<long long>(r.baseline.tlbMisses),
               static_cast<long long>(r.results[1].tlbMisses)});
    t.print(std::cout);

    std::printf("\npaper: probing the cache twice shifts TLB miss "
                "rates (hurts bzip2, helps avmshell); accuracy "
                "differences matter more than coverage differences\n");
    return 0;
}
