/**
 * @file
 * Ablations of the PAP/DLVP design choices called out in §3:
 *   - APT allocation Policy-1 vs Policy-2 (§3.1.2: "Policy-2 is
 *     superior since entries with high confidence can survive
 *     eviction")
 *   - load-path history length (the 16-bit register of §3.1)
 *   - confidence requirement (the FPC vector behind "observed only
 *     8 times")
 *   - PAQ lifetime N (§3.2.2: N=4 in a Cortex-A72-like pipeline)
 * Standalone sweeps use the address-prediction driver; the Policy and
 * N ablations also run through the full core.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "sim/addr_pred_driver.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    const std::vector<std::string> sample = {
        "mcf", "crafty", "perlbmk", "aifirf", "omnetpp", "bzip2"};

    // ---- standalone sweeps ----
    auto sweep = [&sample](const pred::PapParams &pp) {
        sim::AddrPredResult total;
        for (const auto &w : sample) {
            const auto t =
                trace::WorkloadRegistry::build(w, 100000);
            const auto r = sim::drivePap(t, pp);
            total.loads += r.loads;
            total.predicted += r.predicted;
            total.correct += r.correct;
        }
        return total;
    };

    sim::Table a("ablation: APT associativity (extension; the paper's "
                 "APT is direct-mapped)");
    a.columns({"assoc", "coverage", "accuracy"});
    for (const unsigned assoc : {1u, 2u, 4u}) {
        pred::PapParams pp;
        pp.assoc = assoc;
        const auto r = sweep(pp);
        a.row({static_cast<long long>(assoc), r.coverage(),
               r.accuracy()});
        std::fputc('.', stderr);
    }
    a.print(std::cout);

    sim::Table h("ablation: load-path history length");
    h.columns({"history_bits", "coverage", "accuracy"});
    for (const unsigned bits : {4u, 8u, 12u, 16u, 24u, 32u}) {
        pred::PapParams pp;
        pp.histBits = bits;
        const auto r = sweep(pp);
        h.row({static_cast<long long>(bits), r.coverage(),
               r.accuracy()});
        std::fputc('.', stderr);
    }
    h.print(std::cout);

    sim::Table c("ablation: confidence requirement "
                 "(expected observations to saturate)");
    c.columns({"fpc_vector", "~obs", "coverage", "accuracy"});
    struct ConfPoint
    {
        const char *name;
        std::vector<double> probs;
        double obs;
    };
    const ConfPoint points[] = {
        {"{1}", {1.0}, 1},
        {"{1,1}", {1.0, 1.0}, 2},
        {"{1,1/2,1/4} (paper)", {1.0, 0.5, 0.25}, 7},
        {"{1,1/4,1/8}", {1.0, 0.25, 0.125}, 13},
        {"{1,1/8,1/8,1/8}", {1.0, 0.125, 0.125, 0.125}, 25},
    };
    for (const auto &pt : points) {
        pred::PapParams pp;
        pp.confProbs = pt.probs;
        const auto r = sweep(pp);
        c.row({std::string(pt.name), pt.obs, r.coverage(),
               r.accuracy()});
        std::fputc('.', stderr);
    }
    c.print(std::cout);

    // ---- core-level ablations ----
    auto policy1 = sim::dlvpConfig();
    policy1.pap.allocPolicy = pred::PapAllocPolicy::Policy1;
    auto n2 = sim::dlvpConfig();
    n2.paqLifetime = 2;
    auto n8 = sim::dlvpConfig();
    n8.paqLifetime = 8;
    auto noway = sim::dlvpConfig();
    noway.pap.wayPrediction = false;
    const std::vector<Config> configs = {
        {"DLVP (paper)", sim::dlvpConfig()},
        {"Policy-1 alloc", policy1},
        {"PAQ N=2", n2},
        {"PAQ N=8", n8},
        {"no way prediction", noway},
    };
    const auto rows = runSuite(configs, sample, 150000);

    sim::Table t("ablation: core-level design points "
                 "(sample-average speedup and coverage)");
    t.columns({"design", "avg_speedup", "avg_coverage",
               "avg_paq_drop_rate"});
    for (std::size_t i = 0; i < configs.size(); ++i)
        t.row({configs[i].name, meanSpeedup(rows, i),
               meanOf(rows,
                      [i](const WorkloadRow &r) {
                          return r.results[i].coverage();
                      }),
               meanOf(rows, [i](const WorkloadRow &r) {
                   return r.results[i].paqAllocs
                              ? static_cast<double>(
                                    r.results[i].paqDrops) /
                                    static_cast<double>(
                                        r.results[i].paqAllocs)
                              : 0.0;
               })});
    t.print(std::cout);
    std::printf("\nexpected: Policy-2 >= Policy-1; short PAQ "
                "lifetimes drop more entries\n");
    return 0;
}
