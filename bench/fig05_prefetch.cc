/**
 * @file
 * Figure 5: benefit of DLVP-generated prefetches — speedup with the
 * prefetch-on-probe-miss feature on vs off, and the fraction of loads
 * for which DLVP generated a prefetch. The paper reports a small
 * average gain (~0.1%) because the prefetched fraction is tiny (0.3%
 * on average; ~1.1% for h264ref).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    auto off = sim::dlvpConfig();
    off.dlvpPrefetch = false;
    auto on = sim::dlvpConfig();
    on.dlvpPrefetch = true;
    const std::vector<Config> configs = {{"DLVP-nopf", off},
                                         {"DLVP+pf", on}};
    // The paper's Figure 5 shows a subset plus the average; we show
    // the memory-bound candidates plus a broad sample.
    const auto rows = runSuite(
        configs, {"h264ref", "soplex", "bzip2", "mcf", "omnetpp",
                  "perlbmk", "aifirf", "hmmer", "xalancbmk", "pdfjs"});

    sim::Table t("Figure 5: DLVP prefetch-on-probe-miss");
    t.columns({"workload", "spd_nopf", "spd_pf", "pf_gain",
               "loads_prefetched"});
    std::vector<double> gains, fracs;
    for (const auto &r : rows) {
        const double s0 = sim::speedup(r.baseline, r.results[0]);
        const double s1 = sim::speedup(r.baseline, r.results[1]);
        const double frac =
            r.results[1].committedLoads
                ? static_cast<double>(r.results[1].dlvpPrefetches) /
                      static_cast<double>(r.results[1].committedLoads)
                : 0.0;
        gains.push_back(s1 / s0);
        fracs.push_back(frac);
        t.row({r.workload, s0, s1, s1 / s0, frac});
    }
    t.row({std::string("AVERAGE"), meanSpeedup(rows, 0),
           meanSpeedup(rows, 1), sim::amean(gains),
           sim::amean(fracs)});
    t.print(std::cout);
    std::printf("\npaper: fraction prefetched is small (avg ~0.3%%), "
                "so the average gain is ~0.1%%\n");
    return 0;
}
