/**
 * @file
 * Figure 8: combining DLVP and VTAGE as a tournament (§5.2.3).
 *   8a: average speedup and coverage of each predictor alone and
 *       combined — the paper notes the small coverage increase when
 *       combined (significant overlap between the two).
 *   8b: breakdown of final predictions by predictor (paper: DLVP
 *       18.2% vs VTAGE 16.1% of loads).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    const std::vector<Config> configs = {
        {"DLVP", sim::dlvpConfig()},
        {"VTAGE", sim::vtageConfig()},
        {"tournament", sim::tournamentConfig()},
    };
    const auto rows = runSuite(configs);

    sim::Table a("Figure 8a: alone vs combined (suite averages)");
    a.columns({"configuration", "avg_speedup", "avg_coverage"});
    for (std::size_t i = 0; i < configs.size(); ++i)
        a.row({configs[i].name, meanSpeedup(rows, i),
               meanOf(rows, [i](const WorkloadRow &r) {
                   return r.results[i].coverage();
               })});
    a.print(std::cout);

    const double d_cov = meanOf(rows, [](const WorkloadRow &r) {
        return r.results[0].coverage();
    });
    const double t_cov = meanOf(rows, [](const WorkloadRow &r) {
        return r.results[2].coverage();
    });

    sim::Table b("Figure 8b: breakdown of final predictions "
                 "(fraction of loads)");
    b.columns({"final predictor", "fraction_of_loads"});
    b.row({std::string("DLVP"),
           meanOf(rows,
                  [](const WorkloadRow &r) {
                      return r.results[2].committedLoads
                                 ? static_cast<double>(
                                       r.results[2]
                                           .tournamentDlvpFinal) /
                                       static_cast<double>(
                                           r.results[2].committedLoads)
                                 : 0.0;
                  })});
    b.row({std::string("VTAGE"),
           meanOf(rows, [](const WorkloadRow &r) {
               return r.results[2].committedLoads
                          ? static_cast<double>(
                                r.results[2].tournamentVtageFinal) /
                                static_cast<double>(
                                    r.results[2].committedLoads)
                          : 0.0;
           })});
    b.print(std::cout);

    std::printf("\ncombined coverage gain over DLVP alone: %.1f "
                "points (paper: small — the predictors overlap "
                "substantially)\n",
                100.0 * (t_cov - d_cov));
    std::printf("paper 8b: DLVP 18.2%% vs VTAGE 16.1%% of loads\n");
    return 0;
}
