/**
 * @file
 * Extension bench: how DLVP's benefit scales with machine width.
 *
 * Value prediction attacks true-dependency stalls, which bind harder
 * as the machine gets wider relative to its chains (the paper's
 * motivation: "current flagship processors excel at extracting ILP
 * ... extracting ILP is inherently limited by true data
 * dependencies"). Sweeping the core width shows where DLVP's benefit
 * comes from — and that a too-narrow machine can't use the broken
 * chains.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    struct WidthPoint
    {
        const char *name;
        unsigned fetch, dispatch, issue, ls, commit;
    };
    const WidthPoint points[] = {
        {"2-wide", 2, 2, 4, 1, 4},
        {"4-wide (paper)", 4, 4, 8, 2, 8},
        {"6-wide", 6, 6, 10, 3, 10},
    };
    const std::vector<std::string> sample = {
        "mcf", "astar", "perlbmk", "aifirf", "pdfjs", "dromaeo"};

    sim::Table t("extension: DLVP benefit vs machine width "
                 "(sample averages)");
    t.columns({"width", "baseline_ipc", "dlvp_speedup"});
    for (const auto &pt : points) {
        core::CoreParams params = sim::baselineCore();
        params.fetchWidth = pt.fetch;
        params.dispatchWidth = pt.dispatch;
        params.issueWidth = pt.issue;
        params.lsLanes = pt.ls;
        params.commitWidth = pt.commit;
        sim::Simulator simulator(params, 150000);
        std::vector<double> ipcs, spds;
        for (const auto &w : sample) {
            const auto base = simulator.run(w, sim::baselineVp());
            const auto dlvp = simulator.run(w, sim::dlvpConfig());
            ipcs.push_back(base.ipc());
            spds.push_back(sim::speedup(base, dlvp));
            simulator.evict(w);
            std::fputc('.', stderr);
        }
        t.row({std::string(pt.name), sim::amean(ipcs),
               sim::amean(spds)});
    }
    std::fputc('\n', stderr);
    t.print(std::cout);
    std::printf("\nexpected: the absolute benefit holds or grows with "
                "width — dependency chains, not structural width, are "
                "the binding constraint value prediction attacks\n");
    return 0;
}
