/**
 * @file
 * Figure 7: the VTAGE design-space findings of §5.2.2 — vanilla
 * VTAGE vs dynamic vs static opcode filters, each predicting loads
 * only or all instructions: average speedup, coverage, and accuracy.
 *
 * Paper shape: vanilla improves significantly with a filter; static
 * beats dynamic (no filter-training mispredictions); loads-only beats
 * all-instructions at an 8KB budget.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    const std::vector<Config> configs = {
        {"vanilla/loads", sim::vtageConfigWith(pred::VtageFilter::None,
                                               true)},
        {"dynamic/loads",
         sim::vtageConfigWith(pred::VtageFilter::Dynamic, true)},
        {"static/loads",
         sim::vtageConfigWith(pred::VtageFilter::Static, true)},
        {"vanilla/all", sim::vtageConfigWith(pred::VtageFilter::None,
                                             false)},
        {"dynamic/all",
         sim::vtageConfigWith(pred::VtageFilter::Dynamic, false)},
        {"static/all", sim::vtageConfigWith(pred::VtageFilter::Static,
                                            false)},
    };
    const auto rows = runSuite(configs);

    sim::Table t("Figure 7: VTAGE flavors (suite averages)");
    t.columns({"configuration", "avg_speedup", "avg_coverage",
               "avg_accuracy"});
    std::vector<double> spd(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        spd[i] = meanSpeedup(rows, i);
        std::uint64_t pred = 0, correct = 0;
        for (const auto &r : rows) {
            pred += r.results[i].vpPredictedLoads +
                    r.results[i].vpPredictedInsts;
            correct += r.results[i].vpCorrectLoads +
                       r.results[i].vpCorrectInsts;
        }
        t.row({configs[i].name, spd[i],
               meanOf(rows,
                      [i](const WorkloadRow &r) {
                          return r.results[i].coverage();
                      }),
               pred ? static_cast<double>(correct) /
                          static_cast<double>(pred)
                    : 0.0});
    }
    t.print(std::cout);

    std::printf("\nshape checks: static >= dynamic >= vanilla "
                "(loads)? %s | loads-only static >= all-insts "
                "static? %s\n",
                (spd[2] >= spd[1] - 0.002 && spd[1] >= spd[0] - 0.002)
                    ? "yes"
                    : "NO",
                spd[2] >= spd[5] - 0.002 ? "yes" : "NO");
    return 0;
}
