/**
 * @file
 * Figure 4: standalone address-prediction coverage and accuracy —
 * PAP at confidence 8 versus CAP at confidences 3..64 (§5.1).
 *
 * Paper anchors: PAP 37% coverage / 99.1% accuracy; CAP(8) 29.5% /
 * 97.7%; CAP needs confidence 64 to match PAP's accuracy, dropping
 * to 24% coverage.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "sim/addr_pred_driver.hh"

int
main()
{
    using namespace dlvp;
    const auto names = trace::WorkloadRegistry::names();
    const unsigned cap_confs[] = {3, 8, 16, 24, 32, 64};

    sim::AddrPredResult pap_total;
    sim::AddrPredResult cap_total[6];

    for (const auto &w : names) {
        const auto trace =
            trace::WorkloadRegistry::build(w, bench::kBenchInsts);
        const auto pap = sim::drivePap(trace);
        pap_total.loads += pap.loads;
        pap_total.predicted += pap.predicted;
        pap_total.correct += pap.correct;
        for (unsigned i = 0; i < 6; ++i) {
            pred::CapParams cp;
            cp.confThreshold = cap_confs[i];
            const auto cap = sim::driveCap(trace, cp);
            cap_total[i].loads += cap.loads;
            cap_total[i].predicted += cap.predicted;
            cap_total[i].correct += cap.correct;
        }
        std::fputc('.', stderr);
    }
    std::fputc('\n', stderr);

    sim::Table t("Figure 4: standalone address prediction "
                 "(suite aggregate)");
    t.columns({"predictor", "coverage", "accuracy"});
    t.row({std::string("PAP (conf 8)"), pap_total.coverage(),
           pap_total.accuracy()});
    for (unsigned i = 0; i < 6; ++i)
        t.row({std::string("CAP (conf ") +
                   std::to_string(cap_confs[i]) + ")",
               cap_total[i].coverage(), cap_total[i].accuracy()});
    t.print(std::cout);

    std::printf("\npaper: PAP 0.370/0.991; CAP(8) 0.295/0.977; "
                "CAP(64) 0.240/~0.991\n");
    std::printf("shape: PAP > CAP(8) on both axes? %s | CAP accuracy "
                "rises and coverage falls with confidence? %s\n",
                (pap_total.coverage() > cap_total[1].coverage() &&
                 pap_total.accuracy() > cap_total[1].accuracy())
                    ? "yes"
                    : "NO",
                (cap_total[5].accuracy() >= cap_total[0].accuracy() &&
                 cap_total[5].coverage() <= cap_total[0].coverage())
                    ? "yes"
                    : "NO");
    return 0;
}
