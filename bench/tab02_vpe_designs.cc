/**
 * @file
 * Table 2: area and energy of the three value-prediction-engine
 * design options (§3.2.1), normalized to design #1 (PRF with 8R/8W),
 * assuming 30% of register values are predicted. Paper values are
 * printed alongside the analytic model's.
 */

#include <cstdio>
#include <iostream>

#include "energy/sram_model.hh"
#include "sim/report.hh"

int
main()
{
    using namespace dlvp;
    const auto r = energy::compareVpeDesigns();

    sim::Table t("Table 2: area and energy normalized to design #1");
    t.columns({"metric", "PVT(2r/2w)", "D1(8r/8w)", "D2(8r/10w)",
               "D3(D1+PVT)", "paper_PVT", "paper_D2", "paper_D3"});
    t.row({std::string("area"), r.pvtArea, r.d1Area, r.d2Area,
           r.d3Area, 0.06, 1.16, 1.06});
    t.row({std::string("read energy"), r.pvtRead, r.d1Read, r.d2Read,
           r.d3Read, 0.10, 1.10, 0.80});
    t.row({std::string("write energy"), r.pvtWrite, r.d1Write,
           r.d2Write, r.d3Write, 0.07, 1.51, 1.07});
    t.print(std::cout);

    std::printf("\nshape checks: PVT tiny? %s | D3 cheaper than D2? "
                "%s | D3 read < 1? %s | D3 write > 1? %s\n",
                r.pvtArea < 0.2 ? "yes" : "NO",
                r.d3Area < r.d2Area ? "yes" : "NO",
                r.d3Read < 1.0 ? "yes" : "NO",
                r.d3Write > 1.0 ? "yes" : "NO");
    return 0;
}
