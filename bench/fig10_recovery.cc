/**
 * @file
 * Figure 10: average speedup under flush-based recovery vs an oracle
 * replay model (§5.2.4) for CAP, DLVP, and VTAGE.
 *
 * Paper shape: CAP improves a lot with replay (2.3% -> 4.2%) because
 * its accuracy is lowest; VTAGE and DLVP improve only slightly
 * (+0.7/+0.8 points) because they rarely mispredict.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::bench;

    auto mk = [](core::VpConfig vp, core::RecoveryMode m) {
        vp.recovery = m;
        return vp;
    };
    const std::vector<Config> configs = {
        {"CAP/flush", mk(sim::capConfig(), core::RecoveryMode::Flush)},
        {"CAP/replay",
         mk(sim::capConfig(), core::RecoveryMode::OracleReplay)},
        {"DLVP/flush",
         mk(sim::dlvpConfig(), core::RecoveryMode::Flush)},
        {"DLVP/replay",
         mk(sim::dlvpConfig(), core::RecoveryMode::OracleReplay)},
        {"VTAGE/flush",
         mk(sim::vtageConfig(), core::RecoveryMode::Flush)},
        {"VTAGE/replay",
         mk(sim::vtageConfig(), core::RecoveryMode::OracleReplay)},
    };
    const auto rows = runSuite(configs);

    sim::Table t("Figure 10: flush vs oracle-replay recovery "
                 "(suite averages)");
    t.columns({"predictor", "flush_speedup", "replay_speedup",
               "replay_gain_pts"});
    const char *names[] = {"CAP", "DLVP", "VTAGE"};
    double gains[3];
    for (int i = 0; i < 3; ++i) {
        const double f = meanSpeedup(rows, 2 * i);
        const double r = meanSpeedup(rows, 2 * i + 1);
        gains[i] = (r - f) * 100.0;
        t.row({std::string(names[i]), f, r, gains[i]});
    }
    t.print(std::cout);

    std::printf("\npaper: CAP gains ~1.9 points from replay; DLVP "
                "and VTAGE gain only ~0.8/0.7 (already >99%% "
                "accurate)\n");
    std::printf("shape: CAP gains most from replay? %s\n",
                (gains[0] >= gains[1] && gains[0] >= gains[2])
                    ? "yes"
                    : "NO");
    return 0;
}
