#include "model.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace fs = std::filesystem;

namespace dlvp::analyze::detail
{

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::vector<Token>
tokenize(const std::vector<std::string> &lines)
{
    std::vector<Token> toks;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &s = lines[li];
        const unsigned lineNo = static_cast<unsigned>(li + 1);
        std::size_t i = 0;
        while (i < s.size()) {
            const char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
            } else if (c == '_' ||
                       std::isalnum(static_cast<unsigned char>(c))) {
                std::size_t j = i;
                while (j < s.size() &&
                       (s[j] == '_' ||
                        std::isalnum(static_cast<unsigned char>(s[j]))))
                    ++j;
                toks.push_back({s.substr(i, j - i), lineNo});
                i = j;
            } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
                toks.push_back({"::", lineNo});
                i += 2;
            } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
                toks.push_back({"->", lineNo});
                i += 2;
            } else {
                toks.push_back({std::string(1, c), lineNo});
                ++i;
            }
        }
    }
    return toks;
}

namespace
{

/** Parse "// dlvp-analyze: allow(rule[,rule])" suppressions. */
void
collectSuppressions(SourceFile &f)
{
    static const std::regex re(
        R"(dlvp-analyze:\s*allow\(([A-Za-z\-, ]+)\))");
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
        std::smatch m;
        if (!std::regex_search(f.raw[li], m, re))
            continue;
        std::set<std::string> rules;
        std::string rule;
        std::istringstream ss(m[1].str());
        while (std::getline(ss, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                rules.insert(rule);
        }
        // The comment covers its own line and the next one, so it can
        // trail the flagged statement or sit on the line above it.
        const unsigned lineNo = static_cast<unsigned>(li + 1);
        for (const std::string &r : rules) {
            f.allow[lineNo].emplace(r, lineNo);
            f.allow[lineNo + 1].emplace(r, lineNo);
        }
        f.allowAtOrigin[lineNo].insert(rules.begin(), rules.end());
    }
}

/** Parse #include directives from the raw lines. */
void
collectIncludes(SourceFile &f)
{
    static const std::regex re(
        R"(^\s*#\s*include\s*(["<])([^">]+)[">])");
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
        std::smatch m;
        if (!std::regex_search(f.raw[li], m, re))
            continue;
        Include inc;
        inc.target = m[2].str();
        inc.line = static_cast<unsigned>(li + 1);
        inc.quoted = m[1].str() == "\"";
        f.includes.push_back(std::move(inc));
    }
}

} // namespace

std::uint64_t
fnv1a(std::string_view data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

bool
loadFile(const std::string &path, SourceFile &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    out.path = path;
    out.contentHash = fnv1a(text);
    out.raw = splitLines(text);
    out.code = splitLines(stripCommentsAndStrings(text));
    out.tokens = tokenize(out.code);
    collectSuppressions(out);
    collectIncludes(out);
    return true;
}

std::optional<std::string>
siblingPath(const std::string &path)
{
    fs::path p(path);
    const std::string ext = p.extension().string();
    const char *other = ext == ".hh" ? ".cc" : ext == ".cc" ? ".hh" : "";
    if (*other == '\0')
        return std::nullopt;
    fs::path sib = p;
    sib.replace_extension(other);
    std::error_code ec;
    if (!fs::exists(sib, ec))
        return std::nullopt;
    return sib.string();
}

void
Reporter::report(const SourceFile &f, unsigned line,
                 const std::string &rule, std::string message)
{
    const auto it = f.allow.find(line);
    if (it != f.allow.end()) {
        const auto jt = it->second.find(rule);
        if (jt != it->second.end()) {
            uses_.insert({f.path, jt->second, rule});
            return;
        }
    }
    out_.push_back({rule, f.path, line, std::move(message)});
}

std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "<")
            ++depth;
        else if (toks[i].text == ">" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

std::size_t
skipParens(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

bool
containsNoCase(const std::string &haystack, const std::string &needle)
{
    std::string h = haystack;
    std::transform(h.begin(), h.end(), h.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return h.find(needle) != std::string::npos;
}

} // namespace dlvp::analyze::detail
