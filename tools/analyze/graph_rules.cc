/**
 * @file
 * Cross-file graph rules: layering (include-graph vs the committed
 * manifest), lock-discipline (DLVP_GUARDED_BY / DLVP_REQUIRES), and
 * hot-path purity (call-graph reachability from DLVP_HOT tags).
 *
 * All three stay at the same token altitude as the PR 5 rules — no
 * compiler, no build flags — but consume the whole-repo model:
 * include edges for layering, the component (file + sibling) for lock
 * discipline, and the cross-file function index for the hot-path
 * walk. The deliberate approximations are documented per rule; each
 * errs toward false positives that a reviewed suppression can settle,
 * never toward silently missing a violation pattern it claims to
 * catch.
 */

#include "rules.hh"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

namespace fs = std::filesystem;

namespace dlvp::analyze::detail
{

namespace
{

// ---------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------

/**
 * Reverse-scan from @p i (exclusive) to the start of the enclosing
 * statement: the index just past the previous top-level ';', '{' or
 * '}'. Balanced brace/paren/bracket groups encountered on the way
 * back (default initializers, init-list arguments) are stepped over.
 */
std::size_t
statementStart(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    while (i > 0) {
        const std::string &t = toks[i - 1].text;
        if (t == "}" || t == ")" || t == "]") {
            ++depth;
        } else if (t == "{" || t == "(" || t == "[") {
            if (depth == 0)
                return i;
            --depth;
        } else if (t == ";" && depth == 0) {
            return i;
        }
        --i;
    }
    return 0;
}

bool
rawLineHasDefine(const SourceFile &f, unsigned line)
{
    return line >= 1 && line <= f.raw.size() &&
           f.raw[line - 1].find("#define") != std::string::npos;
}

// ---------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // namespace

bool
loadLayerManifest(const std::string &path, LayerManifest &out,
                  std::vector<Finding> &findings)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out.path = path;
    out.rawText = buf.str();

    const std::vector<std::string> lines = splitLines(out.rawText);
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const unsigned lineNo = static_cast<unsigned>(li + 1);
        std::string line = lines[li];
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto colon = line.find(':');
        if (colon == std::string::npos) {
            findings.push_back({kRuleLayering, path, lineNo,
                                "manifest line is not "
                                "'component: dep dep...'"});
            continue;
        }
        const std::string name = trim(line.substr(0, colon));
        if (name.empty()) {
            findings.push_back({kRuleLayering, path, lineNo,
                                "manifest line declares an empty "
                                "component name"});
            continue;
        }
        if (out.allowed.count(name)) {
            findings.push_back({kRuleLayering, path, lineNo,
                                "component '" + name +
                                    "' declared twice in the "
                                    "manifest"});
            continue;
        }
        std::set<std::string> deps;
        std::istringstream ss(line.substr(colon + 1));
        std::string dep;
        while (ss >> dep)
            deps.insert(dep);
        deps.insert(name); // a component may always include itself
        out.allowed.emplace(name, std::move(deps));
        out.declLine.emplace(name, lineNo);
    }

    // Every dependency must itself be a declared component.
    for (const auto &[name, deps] : out.allowed)
        for (const std::string &dep : deps)
            if (!out.allowed.count(dep))
                findings.push_back(
                    {kRuleLayering, path, out.declLine.at(name),
                     "component '" + name + "' depends on '" + dep +
                         "', which the manifest does not declare"});

    // The allowed-dependency relation must be a DAG: a cycle means
    // the manifest cannot order the layers at all.
    std::map<std::string, int> color; // 0 white, 1 grey, 2 black
    std::vector<std::string> trail;
    const std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            color[node] = 1;
            trail.push_back(node);
            const auto it = out.allowed.find(node);
            if (it != out.allowed.end()) {
                for (const std::string &dep : it->second) {
                    if (dep == node || !out.allowed.count(dep))
                        continue;
                    if (color[dep] == 1) {
                        std::string cycle = dep;
                        for (auto rit = trail.rbegin();
                             rit != trail.rend(); ++rit) {
                            cycle += " -> " + *rit;
                            if (*rit == dep)
                                break;
                        }
                        findings.push_back(
                            {kRuleLayering, path,
                             out.declLine.at(dep),
                             "dependency cycle in the layering "
                             "manifest: " +
                                 cycle});
                    } else if (color[dep] == 0) {
                        visit(dep);
                    }
                }
            }
            trail.pop_back();
            color[node] = 2;
        };
    for (const auto &[name, deps] : out.allowed)
        if (color[name] == 0)
            visit(name);
    return true;
}

std::string
componentOf(const std::string &path, const std::string &root)
{
    std::error_code ec;
    fs::path p = fs::weakly_canonical(path, ec);
    if (ec)
        p = fs::absolute(path).lexically_normal();
    fs::path r = fs::weakly_canonical(root.empty() ? "." : root, ec);
    if (ec)
        r = fs::absolute(root.empty() ? "." : root).lexically_normal();
    const fs::path rel = p.lexically_relative(r);
    auto it = rel.begin();
    if (it == rel.end())
        return "";
    const std::string first = it->string();
    if (first == ".." || first == ".")
        return "";
    if (first == "src") {
        if (++it == rel.end())
            return "";
        const std::string second = it->string();
        if (++it == rel.end())
            return ""; // a file directly under src/ has no component
        return second;
    }
    if (first == "tools" || first == "bench" || first == "examples" ||
        first == "tests")
        return first;
    return "";
}

void
runLayeringRule(const SourceFile &f, const LayerManifest &manifest,
                const std::string &root, Reporter &rep)
{
    const std::string comp = componentOf(f.path, root);
    if (comp.empty())
        return; // out of tree (build dirs, third-party TUs)
    const auto allowedIt = manifest.allowed.find(comp);
    if (allowedIt == manifest.allowed.end()) {
        rep.report(f, 1, kRuleLayering,
                   "component '" + comp +
                       "' is not declared in the layering manifest " +
                       manifest.path);
        return;
    }
    const std::set<std::string> &allowed = allowedIt->second;
    for (const Include &inc : f.includes) {
        if (!inc.quoted)
            continue; // <...> includes are system headers
        const auto slash = inc.target.find('/');
        if (slash == std::string::npos)
            continue; // same-directory include, same component
        const std::string target = inc.target.substr(0, slash);
        if (!manifest.allowed.count(target))
            continue; // not a layered component (external path)
        if (!allowed.count(target))
            rep.report(f, inc.line, kRuleLayering,
                       "'" + comp + "' may not include '" +
                           inc.target + "': the layering manifest "
                           "declares no '" + comp + "' -> '" + target +
                           "' dependency");
    }
}

// ---------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------

namespace
{

struct GuardedMember
{
    std::string mutexName;
    unsigned declLine = 0;
};

/**
 * Member name of the declaration ending just before token @p i (the
 * DLVP_GUARDED_BY statement). The declaration span runs from the
 * previous statement boundary up to its ';'; scanning it at template/
 * paren/bracket depth 0, the name is the identifier preceding the
 * initializer ('=', '{', '[') or, without one, the last identifier.
 */
std::string
guardedMemberName(const std::vector<Token> &toks, std::size_t i)
{
    if (i == 0 || toks[i - 1].text != ";")
        return "";
    const std::size_t begin = statementStart(toks, i - 1);
    int depth = 0;
    std::string lastIdent;
    for (std::size_t j = begin; j + 1 < i; ++j) {
        const std::string &t = toks[j].text;
        // At declarator depth 0 the name is the identifier before the
        // initializer ('=', '{...}') or array bound ('[...]').
        if (depth == 0 && (t == "=" || t == "{" || t == "["))
            return lastIdent;
        if (t == "<" || t == "(" || t == "[" || t == "{") {
            ++depth;
        } else if (t == ">" || t == ")" || t == "]" || t == "}") {
            if (depth > 0)
                --depth;
        } else if (depth == 0 && toks[j].isIdent()) {
            lastIdent = t;
        }
    }
    return lastIdent;
}

/** Lock RAII types whose construction registers a held mutex. */
bool
isLockType(const std::string &t)
{
    return t == "lock_guard" || t == "unique_lock" ||
           t == "shared_lock" || t == "scoped_lock";
}

/**
 * Mutex names locked by the declaration whose type token is at @p i;
 * empty when this is not a lock construction (parameter, member,
 * deferred lock).
 */
std::vector<std::string>
lockedMutexes(const std::vector<Token> &toks, std::size_t i)
{
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<")
        j = skipAngles(toks, j);
    if (j >= toks.size() || !toks[j].isIdent())
        return {};
    const std::size_t open = j + 1;
    if (open >= toks.size() || toks[open].text != "(")
        return {};
    const std::size_t end = skipParens(toks, open);
    std::vector<std::string> segments;
    std::string lastIdent;
    int depth = 0;
    for (std::size_t k = open; k < end; ++k) {
        const std::string &t = toks[k].text;
        if (t == "(" || t == "<" || t == "[" || t == "{") {
            ++depth;
        } else if (t == ")" || t == ">" || t == "]" || t == "}") {
            --depth;
            if (depth == 0 && !lastIdent.empty())
                segments.push_back(lastIdent);
        } else if (t == "," && depth == 1) {
            if (!lastIdent.empty())
                segments.push_back(lastIdent);
            lastIdent.clear();
        } else if (toks[k].isIdent()) {
            lastIdent = t;
        }
    }
    for (const std::string &seg : segments)
        if (seg == "defer_lock" || seg == "try_to_lock")
            return {}; // not held at construction
    if (segments.empty())
        return {};
    if (toks[i].text == "scoped_lock")
        return segments;
    return {segments.front()}; // extra args are tags (adopt_lock)
}

/** Names declared by `class X` / `struct X` in a token stream. */
void
collectClassNames(const std::vector<Token> &toks,
                  std::set<std::string> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i)
        if ((toks[i].text == "class" || toks[i].text == "struct") &&
            toks[i + 1].isIdent())
            out.insert(toks[i + 1].text);
}

void
collectGuardedMembers(const SourceFile &f,
                      std::map<std::string, GuardedMember> &out,
                      Reporter &rep, bool reportHere)
{
    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "DLVP_GUARDED_BY" ||
            toks[i + 1].text != "(" || !toks[i + 2].isIdent() ||
            toks[i + 3].text != ")")
            continue;
        if (rawLineHasDefine(f, toks[i].line))
            continue;
        const std::string member = guardedMemberName(toks, i);
        if (member.empty()) {
            if (reportHere)
                rep.report(f, toks[i].line, kRuleLockDiscipline,
                           "DLVP_GUARDED_BY does not follow a member "
                           "declaration it can attach to");
            continue;
        }
        out.emplace(member,
                    GuardedMember{toks[i + 2].text, toks[i].line});
    }
}

} // namespace

void
runLockDisciplineRule(const SourceFile &f, const SourceFile *sibling,
                      Reporter &rep)
{
    // Component view: guard annotations usually sit in the header
    // while most access sites live in the .cc; gather both.
    std::map<std::string, GuardedMember> guarded;
    std::set<std::string> classNames;
    collectGuardedMembers(f, guarded, rep, /*reportHere=*/true);
    collectClassNames(f.tokens, classNames);
    if (sibling) {
        collectGuardedMembers(*sibling, guarded, rep,
                              /*reportHere=*/false);
        collectClassNames(sibling->tokens, classNames);
    }
    if (guarded.empty())
        return;

    // Lexical walk of this file: a scope stack classifying each brace
    // as namespace/class/function/block and carrying the set of
    // mutexes a lock construction (or DLVP_REQUIRES tag) registered.
    struct Scope
    {
        char kind; // 'N'amespace, 'C'lass, 'F'unction, 'B'lock/other
        std::set<std::string> held;
        std::string funcName;
    };
    std::vector<Scope> stack;

    const auto inFunction = [&stack]() -> const Scope * {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == 'F')
                return &*it;
            if (it->kind != 'B')
                return nullptr;
        }
        return nullptr;
    };
    const auto holds = [&stack](const std::string &mtx) {
        for (const Scope &s : stack)
            if (s.held.count(mtx))
                return true;
        return false;
    };

    const std::vector<Token> &toks = f.tokens;
    // Statement start, maintained incrementally: the index just past
    // the last top-level ';', '{' or '}' the walk crossed. This is
    // what lets the brace classifier see only its own header tokens
    // without re-scanning backwards across closed scopes.
    std::size_t stmtBegin = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.text == ";") {
            stmtBegin = i + 1;
            continue;
        }

        if (t.text == "{") {
            if (inFunction()) {
                stack.push_back({'B', {}, ""});
                stmtBegin = i + 1;
                continue;
            }
            // Classify a new top-level brace from its header tokens.
            Scope scope{'B', {}, ""};
            const std::size_t begin = stmtBegin;
            bool sawParen = false, sawClassKey = false;
            int depth = 0;
            std::string lastIdent;
            std::size_t nameParen = toks.size();
            for (std::size_t j = begin; j < i; ++j) {
                const std::string &h = toks[j].text;
                if (h == "namespace") {
                    scope.kind = 'N';
                    break;
                }
                if (h == "<" || h == "[") {
                    ++depth;
                } else if (h == ">" || h == "]") {
                    if (depth > 0)
                        --depth;
                } else if (h == "(") {
                    if (depth == 0 && !sawParen) {
                        sawParen = true;
                        nameParen = j;
                        // Function header: name precedes this paren.
                        if (!lastIdent.empty()) {
                            scope.funcName = lastIdent;
                            if (j >= 2 && toks[j - 1].isIdent() &&
                                toks[j - 2].text == "~")
                                scope.funcName = "~" + lastIdent;
                        }
                    }
                    ++depth;
                } else if (h == ")") {
                    if (depth > 0)
                        --depth;
                } else if (depth == 0) {
                    if (h == "class" || h == "struct" ||
                        h == "union" || h == "enum")
                        sawClassKey = true;
                    else if (toks[j].isIdent() && j < nameParen)
                        lastIdent = h;
                }
            }
            if (scope.kind != 'N') {
                if (sawParen && !scope.funcName.empty())
                    scope.kind = 'F';
                else if (sawClassKey)
                    scope.kind = 'C';
                // else 'B': initializer braces, `= {...}` tables.
            }
            stack.push_back(std::move(scope));
            stmtBegin = i + 1;
            continue;
        }
        if (t.text == "}") {
            if (!stack.empty())
                stack.pop_back();
            stmtBegin = i + 1;
            continue;
        }

        if (isLockType(t.text) && !stack.empty()) {
            for (std::string &mtx : lockedMutexes(toks, i))
                stack.back().held.insert(std::move(mtx));
            continue;
        }
        if (t.text == "DLVP_REQUIRES" && i + 3 < toks.size() &&
            toks[i + 1].text == "(" && toks[i + 2].isIdent() &&
            toks[i + 3].text == ")" &&
            !rawLineHasDefine(f, t.line)) {
            if (!stack.empty())
                stack.back().held.insert(toks[i + 2].text);
            continue;
        }

        if (!t.isIdent())
            continue;
        const auto git = guarded.find(t.text);
        if (git == guarded.end())
            continue;
        // Only direct accesses to *this* object's member count:
        // `other.queue_` is a different instance (same class, so the
        // same discipline applies at its own sites), and a qualified
        // name is a type/static, not the member.
        if (i > 0) {
            const std::string &prev = toks[i - 1].text;
            if (prev == "::")
                continue;
            if ((prev == "." || prev == "->") &&
                (i < 2 || toks[i - 2].text != "this"))
                continue;
        }
        const Scope *fn = inFunction();
        if (!fn)
            continue; // declaration / class scope / initializer
        const std::string &name = fn->funcName;
        const bool ctorDtor =
            classNames.count(name) ||
            (!name.empty() && name[0] == '~' &&
             classNames.count(name.substr(1)));
        if (ctorDtor)
            continue; // single-threaded by contract
        if (holds(git->second.mutexName))
            continue;
        rep.report(f, t.line, kRuleLockDiscipline,
                   "access to '" + t.text + "' (DLVP_GUARDED_BY '" +
                       git->second.mutexName +
                       "') in '" + name +
                       "' without holding the lock; take a "
                       "lock_guard/unique_lock or tag the function "
                       "DLVP_REQUIRES(" +
                       git->second.mutexName + ")");
    }
}

// ---------------------------------------------------------------------
// hot-path
// ---------------------------------------------------------------------

namespace
{

/** Keywords and markers that look like `name(` but are not calls. */
bool
isNonCallKeyword(const std::string &t)
{
    static const std::set<std::string> kKeywords = {
        "if",       "for",          "while",      "switch",
        "catch",    "return",       "sizeof",     "alignof",
        "alignas",  "decltype",     "noexcept",   "static_assert",
        "case",     "else",         "do",         "throw",
        "new",      "delete",       "operator",   "assert",
        "defined",  "typeid",       "co_return",  "co_await",
        "DLVP_GUARDED_BY", "DLVP_REQUIRES", "DLVP_SPEC_STATE",
        "DLVP_ACCEL",
    };
    return kKeywords.count(t) != 0;
}

/** Index just past a throw statement starting at toks[i] == "throw". */
std::size_t
skipThrowStatement(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "(" || t == "{" || t == "[")
            ++depth;
        else if (t == ")" || t == "}" || t == "]")
            --depth;
        else if (t == ";" && depth <= 0)
            return i + 1;
    }
    return toks.size();
}

const char *
bannedCategory(const std::vector<Token> &toks, std::size_t i)
{
    static const std::set<std::string> kAlloc = {
        "make_unique", "make_shared", "malloc", "calloc", "realloc",
    };
    static const std::set<std::string> kGrowth = {
        "push_back", "emplace_back", "emplace", "push_front",
        "emplace_front", "insert", "resize", "reserve", "append",
    };
    static const std::set<std::string> kIo = {
        "printf", "fprintf", "puts",  "fputs",   "fwrite",
        "fread",  "fopen",   "fclose", "getline", "scanf",
        "fscanf", "cout",    "cerr",  "clog",    "ofstream",
        "ifstream", "fstream",
    };
    const std::string &t = toks[i].text;
    const bool call =
        i + 1 < toks.size() && toks[i + 1].text == "(";
    if (t == "new")
        return "heap allocation";
    if (call && kAlloc.count(t))
        return "heap allocation";
    if (call && kGrowth.count(t))
        return "container growth (may allocate)";
    if (isLockType(t))
        return "locking";
    if (call && t == "lock" && i > 0 &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        return "locking";
    if (kIo.count(t))
        return "I/O";
    return nullptr;
}

} // namespace

FunctionIndex
buildFunctionIndex(const std::vector<const SourceFile *> &files)
{
    FunctionIndex index;

    // Include-target resolution: basename and dir/basename suffixes
    // of every analyzed path, so `#include "core/core.hh"` and
    // `#include "pap.hh"` both land on the loaded model.
    std::map<std::string, std::set<std::string>> bySuffix;
    for (const SourceFile *f : files) {
        const fs::path p(f->path);
        bySuffix[p.filename().string()].insert(f->path);
        if (p.has_parent_path())
            bySuffix[(p.parent_path().filename() / p.filename())
                         .string()]
                .insert(f->path);
    }
    const auto addSibling = [](std::set<std::string> &ctx,
                               const std::string &path) {
        ctx.insert(path);
        if (const auto sib = siblingPath(path))
            ctx.insert(*sib);
    };
    for (const SourceFile *f : files) {
        std::set<std::string> &ctx = index.context[f->path];
        addSibling(ctx, f->path);
        for (const Include &inc : f->includes) {
            if (!inc.quoted)
                continue;
            const auto it = bySuffix.find(inc.target);
            if (it == bySuffix.end())
                continue;
            for (const std::string &p : it->second)
                addSibling(ctx, p);
        }
    }

    // Function definitions: `name ( params ) qualifiers {`. The
    // qualifier walk steps over ctor-init-list groups and template
    // angles; a ';', '=', or anything else first means declaration or
    // expression, not a definition.
    for (const SourceFile *f : files) {
        const std::vector<Token> &toks = f->tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            if (!toks[i].isIdent() || toks[i + 1].text != "(" ||
                isNonCallKeyword(toks[i].text))
                continue;
            std::size_t j = skipParens(toks, i + 1);
            bool body = false;
            while (j < toks.size()) {
                const std::string &q = toks[j].text;
                if (q == "{") {
                    body = true;
                    break;
                }
                if (q == "(") {
                    j = skipParens(toks, j);
                } else if (q == "<") {
                    j = skipAngles(toks, j);
                } else if (q == "::" || q == "->" || q == ":" ||
                           q == "," || q == "&" || q == "*" ||
                           toks[j].isIdent()) {
                    ++j;
                } else {
                    break; // ';' declaration, '=' default, operator...
                }
            }
            if (!body)
                continue;
            FunctionDef def;
            def.name = toks[i].text;
            def.file = f;
            def.bodyBegin = j;
            def.bodyEnd = skipBraces(toks, j);
            def.line = toks[i].line;
            for (std::size_t k = j; k < def.bodyEnd; ++k) {
                if (toks[k].text == "DLVP_HOT" &&
                    !rawLineHasDefine(*f, toks[k].line)) {
                    def.hot = true;
                    break;
                }
            }
            index.defs.push_back(std::move(def));
        }
    }
    for (const FunctionDef &def : index.defs)
        index.byName[def.name].push_back(&def);
    return index;
}

void
runHotPathRule(const FunctionIndex &index, Reporter &rep)
{
    // Visited flags are indexed by the def's position in index.defs
    // (never iterated, but an index keeps the determinism rule's
    // no-pointer-keys contract holding for the analyzer itself).
    std::vector<bool> visited(index.defs.size(), false);
    std::set<std::tuple<std::string, unsigned, std::string>> reported;

    // Depth-first walk; resolution of a call in file F is bounded to
    // F, its sibling, F's direct includes and their siblings — the
    // same files the compiler could see, which keeps common names
    // (run, lookup, insert) from teleporting across the repo.
    const std::function<void(const FunctionDef &, const std::string &,
                             int)>
        walk = [&](const FunctionDef &def, const std::string &root,
                   int depth) {
            const std::size_t slot =
                static_cast<std::size_t>(&def - index.defs.data());
            if (depth > 64 || visited[slot])
                return;
            visited[slot] = true;
            const SourceFile &f = *def.file;
            const std::vector<Token> &toks = f.tokens;
            const auto ctxIt = index.context.find(f.path);
            const std::set<std::string> *ctx =
                ctxIt != index.context.end() ? &ctxIt->second
                                             : nullptr;
            for (std::size_t i = def.bodyBegin; i < def.bodyEnd;
                 ++i) {
                const Token &t = toks[i];
                if (t.text == "throw") {
                    // Error exits leave the hot path by definition.
                    i = skipThrowStatement(toks, i) - 1;
                    continue;
                }
                if (!t.isIdent())
                    continue;
                if (const char *cat = bannedCategory(toks, i)) {
                    const std::string via =
                        def.name == root ? "" : " via '" + def.name +
                                                "'";
                    if (reported
                            .insert({f.path, t.line, t.text})
                            .second)
                        rep.report(
                            f, t.line, kRuleHotPath,
                            std::string(cat) + " '" + t.text +
                                "' on the hot path: reachable from "
                                "DLVP_HOT '" +
                                root + "'" + via);
                    continue;
                }
                // Recurse into resolvable calls.
                if (i + 1 >= toks.size() ||
                    toks[i + 1].text != "(" ||
                    isNonCallKeyword(t.text) || !ctx)
                    continue;
                if (i > 0) {
                    const std::string &prev = toks[i - 1].text;
                    if ((prev == "." || prev == "->") &&
                        (i < 2 || toks[i - 2].text != "this"))
                        continue; // member call on another object
                    if (prev == "::" && i >= 2 &&
                        toks[i - 2].text == "std")
                        continue;
                }
                const auto cands = index.byName.find(t.text);
                if (cands == index.byName.end())
                    continue;
                for (const FunctionDef *callee : cands->second)
                    if (ctx->count(callee->file->path))
                        walk(*callee, root, depth + 1);
            }
        };

    for (const FunctionDef &def : index.defs)
        if (def.hot)
            walk(def, def.name, 0);
}

} // namespace dlvp::analyze::detail
