/**
 * @file
 * Rule-family declarations shared between the per-file rules /
 * driver (analyze.cc) and the cross-file graph rules
 * (graph_rules.cc). Analyzer-internal; see analyze.hh for the
 * public surface and DESIGN.md §10 for the add-a-rule recipe.
 */

#ifndef DLVP_TOOLS_ANALYZE_RULES_HH
#define DLVP_TOOLS_ANALYZE_RULES_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hh"

namespace dlvp::analyze::detail
{

inline constexpr const char *kRuleDeterminism = "determinism";
inline constexpr const char *kRuleStatsRegistry = "stats-registry";
inline constexpr const char *kRuleSpecState = "spec-state";
inline constexpr const char *kRuleErrorTaxonomy = "error-taxonomy";
inline constexpr const char *kRuleAccelRegistry = "accel-registry";
inline constexpr const char *kRuleLayering = "layering";
inline constexpr const char *kRuleLockDiscipline = "lock-discipline";
inline constexpr const char *kRuleHotPath = "hot-path";
inline constexpr const char *kRuleStaleSuppression = "stale-suppression";

// ---------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------

/**
 * Parsed tools/analyze/layers.txt: the committed dependency DAG.
 * One line per component, `name: dep dep...`; '#' starts a comment.
 * A component may always include itself.
 */
struct LayerManifest
{
    std::string path;
    /** component -> components it may include from. */
    std::map<std::string, std::set<std::string>> allowed;
    /** component -> its declaration line (for findings). */
    std::map<std::string, unsigned> declLine;
    std::string rawText; ///< verbatim manifest bytes (config hash)
};

/**
 * Parse the manifest and validate it (duplicate/unknown components,
 * cycles become findings against the manifest file itself). Returns
 * false when the file cannot be read.
 */
bool loadLayerManifest(const std::string &path, LayerManifest &out,
                       std::vector<Finding> &findings);

/**
 * Component of @p path relative to @p root: "common".."serve" for
 * src/<c>/..., the directory name itself for tools/ bench/ examples/
 * tests/, empty for anything else (out-of-tree, build dirs).
 */
std::string componentOf(const std::string &path,
                        const std::string &root);

/** Flag includes that cross the manifest DAG against the grain. */
void runLayeringRule(const SourceFile &f, const LayerManifest &manifest,
                     const std::string &root, Reporter &rep);

// ---------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------

/**
 * Check every access to a DLVP_GUARDED_BY member of this component
 * (file + sibling) against the lexical lock model: the access must
 * sit in a scope that constructed a lock_guard/unique_lock/
 * shared_lock/scoped_lock on the named mutex or follows a
 * DLVP_REQUIRES(mutex) tag; constructors and destructors are exempt.
 */
void runLockDisciplineRule(const SourceFile &f,
                           const SourceFile *sibling, Reporter &rep);

// ---------------------------------------------------------------------
// hot-path
// ---------------------------------------------------------------------

/**
 * Lightweight cross-file symbol index: every free/member function
 * definition found in the analyzed set, by name, with its body's
 * token span. Built once per run; the hot-path rule walks it.
 */
struct FunctionDef
{
    std::string name;
    const SourceFile *file = nullptr;
    std::size_t bodyBegin = 0; ///< token index of the body '{'
    std::size_t bodyEnd = 0;   ///< token index just past the body '}'
    unsigned line = 0;
    bool hot = false; ///< body carries a DLVP_HOT tag
};

struct FunctionIndex
{
    /** name -> every definition with that name, in path order. */
    std::map<std::string, std::vector<const FunctionDef *>> byName;
    std::vector<FunctionDef> defs;
    /** file path -> file paths its calls may resolve into. */
    std::map<std::string, std::set<std::string>> context;
};

FunctionIndex
buildFunctionIndex(const std::vector<const SourceFile *> &files);

/**
 * Walk the call graph from every DLVP_HOT function and flag heap
 * allocation, container growth, locking, and I/O anywhere reachable
 * (throw statements exempt — error exits leave the hot path).
 */
void runHotPathRule(const FunctionIndex &index, Reporter &rep);

} // namespace dlvp::analyze::detail

#endif // DLVP_TOOLS_ANALYZE_RULES_HH
