#include "analyze.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace dlvp::analyze
{

namespace
{

constexpr const char *kRuleDeterminism = "determinism";
constexpr const char *kRuleStatsRegistry = "stats-registry";
constexpr const char *kRuleSpecState = "spec-state";
constexpr const char *kRuleErrorTaxonomy = "error-taxonomy";
constexpr const char *kRuleAccelRegistry = "accel-registry";

// ---------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------

/** One token of stripped source: an identifier or a punctuator char. */
struct Token
{
    std::string text;
    unsigned line = 0;

    bool isIdent() const
    {
        const char c = text.empty() ? '\0' : text[0];
        return c == '_' || std::isalpha(static_cast<unsigned char>(c));
    }
};

struct SourceFile
{
    std::string path;
    std::vector<std::string> raw;  ///< raw lines, index 0 = line 1
    std::vector<std::string> code; ///< comment/string-stripped lines
    std::vector<Token> tokens;     ///< tokens of the stripped text
    /** Rules suppressed per line (1-based index into raw). */
    std::map<unsigned, std::set<std::string>> allow;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::vector<Token>
tokenize(const std::vector<std::string> &lines)
{
    std::vector<Token> toks;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &s = lines[li];
        const unsigned lineNo = static_cast<unsigned>(li + 1);
        std::size_t i = 0;
        while (i < s.size()) {
            const char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
            } else if (c == '_' ||
                       std::isalnum(static_cast<unsigned char>(c))) {
                std::size_t j = i;
                while (j < s.size() &&
                       (s[j] == '_' ||
                        std::isalnum(static_cast<unsigned char>(s[j]))))
                    ++j;
                toks.push_back({s.substr(i, j - i), lineNo});
                i = j;
            } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
                toks.push_back({"::", lineNo});
                i += 2;
            } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
                toks.push_back({"->", lineNo});
                i += 2;
            } else {
                toks.push_back({std::string(1, c), lineNo});
                ++i;
            }
        }
    }
    return toks;
}

/** Parse "// dlvp-analyze: allow(rule[,rule])" suppressions. */
void
collectSuppressions(SourceFile &f)
{
    static const std::regex re(
        R"(dlvp-analyze:\s*allow\(([A-Za-z\-, ]+)\))");
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
        std::smatch m;
        if (!std::regex_search(f.raw[li], m, re))
            continue;
        std::set<std::string> rules;
        std::string rule;
        std::istringstream ss(m[1].str());
        while (std::getline(ss, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (!rule.empty())
                rules.insert(rule);
        }
        // The comment covers its own line and the next one, so it can
        // trail the flagged statement or sit on the line above it.
        const unsigned lineNo = static_cast<unsigned>(li + 1);
        f.allow[lineNo].insert(rules.begin(), rules.end());
        f.allow[lineNo + 1].insert(rules.begin(), rules.end());
    }
}

bool
loadFile(const std::string &path, SourceFile &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    out.path = path;
    out.raw = splitLines(text);
    out.code = splitLines(stripCommentsAndStrings(text));
    out.tokens = tokenize(out.code);
    collectSuppressions(out);
    return true;
}

class Reporter
{
  public:
    explicit Reporter(std::vector<Finding> &out) : out_(out) {}

    void
    report(const SourceFile &f, unsigned line, const std::string &rule,
           std::string message)
    {
        const auto it = f.allow.find(line);
        if (it != f.allow.end() && it->second.count(rule))
            return;
        out_.push_back({rule, f.path, line, std::move(message)});
    }

  private:
    std::vector<Finding> &out_;
};

// ---------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------

/**
 * Starting with toks[i] == "<", return the index just past the
 * matching ">" (npos-like toks.size() when unbalanced).
 */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "<")
            ++depth;
        else if (toks[i].text == ">" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/** Index just past the ")" matching toks[i] == "(". */
std::size_t
skipParens(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "(")
            ++depth;
        else if (toks[i].text == ")" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/** Index just past the "}" matching toks[i] == "{". */
std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (toks[i].text == "{")
            ++depth;
        else if (toks[i].text == "}" && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

bool
containsNoCase(const std::string &haystack, const std::string &needle)
{
    std::string h = haystack;
    std::transform(h.begin(), h.end(), h.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return h.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------

/**
 * Names of unordered containers declared in this component. Walks the
 * token stream for `unordered_map< ... > name` / `unordered_set< ... >
 * name` (alias declarations via `using` are outside this net and are
 * caught at their own declaration site).
 */
std::set<std::string>
unorderedNames(const std::vector<Token> &toks)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "unordered_map" &&
            toks[i].text != "unordered_set")
            continue;
        if (toks[i + 1].text != "<")
            continue;
        std::size_t j = skipAngles(toks, i + 1);
        if (j < toks.size() && toks[j].isIdent())
            names.insert(toks[j].text);
    }
    return names;
}

void
runDeterminismRule(const SourceFile &f, const SourceFile *sibling,
                   Reporter &rep)
{
    // Libc randomness / wall-clock calls. steady_clock is the
    // sanctioned timing source (monotonic, never consulted by
    // simulation logic); everything here either returns wall time or
    // hidden-seed randomness, both of which vary run to run.
    static const std::set<std::string> kBannedCalls = {
        "rand",   "srand",        "drand48", "lrand48",
        "random", "gettimeofday", "time",    "clock",
        "timespec_get", "clock_gettime", "rand_r", "localtime",
    };
    // high_resolution_clock is banned alongside system_clock: the
    // standard lets it alias the wall clock, so lockstep scheduling
    // code (batch_runner) that timed lanes with it could observe
    // different values run to run; steady_clock is the sanctioned
    // telemetry source.
    static const std::set<std::string> kBannedIdents = {
        "random_device", "system_clock", "high_resolution_clock",
    };

    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (kBannedIdents.count(t.text)) {
            rep.report(f, t.line, kRuleDeterminism,
                       "'" + t.text +
                           "' is nondeterministic across runs; use a "
                           "seeded generator / steady_clock");
            continue;
        }
        if (!kBannedCalls.count(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue; // not a call
        if (i > 0) {
            const std::string &prev = toks[i - 1].text;
            if (prev == "." || prev == "->")
                continue; // member call on some other object
            if (prev == "::" &&
                (i < 2 || toks[i - 2].text != "std"))
                continue; // qualified into a non-std namespace
        }
        rep.report(f, t.line, kRuleDeterminism,
                   "call to '" + t.text +
                       "()' injects wall-clock/libc randomness into "
                       "simulation code");
    }

    // Iteration over unordered containers: their order depends on
    // hash seeding, libstdc++ version, and pointer values, so any
    // stat- or report-affecting loop over one is a repeatability bug.
    std::set<std::string> unordered = unorderedNames(toks);
    if (sibling) {
        std::set<std::string> sib = unorderedNames(sibling->tokens);
        unordered.insert(sib.begin(), sib.end());
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "for" || toks[i + 1].text != "(")
            continue;
        const std::size_t end = skipParens(toks, i + 1);
        // Find the range-for ':' at top parenthesis depth.
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
            const std::string &txt = toks[j].text;
            if (txt == "(" || txt == "[")
                ++depth;
            else if (txt == ")" || txt == "]")
                --depth;
            else if (txt == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        // Last identifier of the range expression names the
        // container for the patterns used in this codebase
        // (`pages_`, `other.pages_`, ...).
        std::string last;
        for (std::size_t j = colon + 1; j + 1 < end; ++j)
            if (toks[j].isIdent())
                last = toks[j].text;
        if (!last.empty() && unordered.count(last)) {
            rep.report(f, toks[i].line, kRuleDeterminism,
                       "range-for over unordered container '" + last +
                           "'; iteration order is not deterministic");
        }
    }

    // Pointer-keyed ordered containers: std::less<T*> compares
    // addresses, i.e. allocation order.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if ((toks[i].text != "map" && toks[i].text != "set") ||
            toks[i + 1].text != "<")
            continue;
        if (i < 2 || toks[i - 1].text != "::" ||
            toks[i - 2].text != "std")
            continue;
        // Key type = tokens up to the first top-level ',' (or '>').
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &txt = toks[j].text;
            if (txt == "<")
                ++depth;
            else if (txt == ">") {
                if (--depth == 0)
                    break;
            } else if (txt == "," && depth == 1) {
                break;
            } else if (txt == "*" && depth == 1) {
                rep.report(f, toks[i].line, kRuleDeterminism,
                           "pointer-keyed std::" + toks[i].text +
                               "; key order is allocation order, not "
                               "deterministic");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stats-registry
// ---------------------------------------------------------------------

void
runStatsRegistryRule(const SourceFile &f, const std::string &macroName,
                     const std::string &structName, Reporter &rep)
{
    // X-macro entries: from "#define <macroName>(" through the last
    // backslash-continued line.
    std::map<std::string, unsigned> macroEntries; // name -> line
    unsigned macroLine = 0;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.find("#define") == std::string::npos ||
            line.find(macroName) == std::string::npos)
            continue;
        macroLine = static_cast<unsigned>(li + 1);
        static const std::regex entryRe(R"(X\(\s*(\w+)\s*\))");
        for (std::size_t lj = li;; ++lj) {
            if (lj >= f.code.size())
                break;
            const std::string &body = f.code[lj];
            if (lj > li) {
                auto begin = std::sregex_iterator(body.begin(),
                                                  body.end(), entryRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it)
                    macroEntries.emplace(
                        (*it)[1].str(),
                        static_cast<unsigned>(lj + 1));
            }
            const auto lastNonSpace = body.find_last_not_of(" \t");
            if (lastNonSpace == std::string::npos ||
                body[lastNonSpace] != '\\')
                break;
        }
        break;
    }
    if (macroLine == 0) {
        rep.report(f, 1, kRuleStatsRegistry,
                   "registry X-macro '" + macroName + "' not found");
        return;
    }

    // Struct fields: the brace-matched region after "struct <name>".
    const std::vector<Token> &toks = f.tokens;
    std::size_t bodyBegin = toks.size(), bodyEnd = toks.size();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text == "struct" && toks[i + 1].text == structName &&
            toks[i + 2].text == "{") {
            bodyBegin = i + 2;
            bodyEnd = skipBraces(toks, i + 2);
            break;
        }
    }
    if (bodyBegin == toks.size()) {
        rep.report(f, macroLine, kRuleStatsRegistry,
                   "struct '" + structName + "' not found");
        return;
    }
    const unsigned structFirstLine = toks[bodyBegin].line;
    const unsigned structLastLine = toks[bodyEnd - 1].line;

    struct FieldInfo
    {
        unsigned line = 0;
        bool zeroInit = false;
    };
    std::map<std::string, FieldInfo> fields;
    // Data members are single-line "Type name = init;" declarations;
    // anything with parentheses on the line is a function.
    static const std::regex fieldRe(
        R"(^\s*[A-Za-z_][\w:]*\s+(\w+)\s*(=\s*([^;]*?)\s*)?;)");
    for (unsigned ln = structFirstLine; ln <= structLastLine; ++ln) {
        const std::string &line = f.code[ln - 1];
        if (line.find('(') != std::string::npos ||
            line.find("using") != std::string::npos ||
            line.find("static") != std::string::npos)
            continue;
        std::smatch m;
        if (!std::regex_search(line, m, fieldRe))
            continue;
        FieldInfo info;
        info.line = ln;
        info.zeroInit = m[2].matched && m[3].str() == "0";
        fields.emplace(m[1].str(), info);
    }

    for (const auto &[name, info] : fields) {
        if (!macroEntries.count(name))
            rep.report(f, info.line, kRuleStatsRegistry,
                       "field '" + name + "' missing from " +
                           macroName +
                           " (sweeps/goldens will silently skip it)");
        if (!info.zeroInit)
            rep.report(f, info.line, kRuleStatsRegistry,
                       "field '" + name +
                           "' is not zero-initialized ('= 0')");
    }
    for (const auto &[name, line] : macroEntries) {
        if (!fields.count(name))
            rep.report(f, line, kRuleStatsRegistry,
                       "registry entry '" + name +
                           "' names no field of " + structName);
    }
}

// ---------------------------------------------------------------------
// Rule: accel-registry
// ---------------------------------------------------------------------

/**
 * Cross-check the LoadAccelerator registry against the golden
 * CoreStats table: every key registered under DLVP_ACCEL("<key>")
 * must appear in some golden row's accelerator column, and every
 * golden accelerator column must name a registered key. A registered
 * accelerator without a golden row has no bit-identity anchor — the
 * exact gap this lint closes.
 *
 * Both sides of the check live inside string literals, which the
 * shared stripper blanks, so this rule scans raw lines.
 */
void
runAccelRegistryRule(const std::vector<SourceFile *> &sources,
                     const SourceFile &golden, Reporter &rep)
{
    // key -> first registration site (file, line)
    std::map<std::string, std::pair<const SourceFile *, unsigned>>
        registered;
    static const std::regex markerRe(
        R"re(DLVP_ACCEL\(\s*"([^"]*)"\s*\))re");
    for (const SourceFile *f : sources) {
        for (std::size_t li = 0; li < f->raw.size(); ++li) {
            const std::string &line = f->raw[li];
            // Comments (stripped from .code) and the marker's own
            // #define don't register anything; only use sites do.
            if (li >= f->code.size() ||
                f->code[li].find("DLVP_ACCEL") == std::string::npos)
                continue;
            if (line.find("#define") != std::string::npos)
                continue;
            std::smatch m;
            if (!std::regex_search(line, m, markerRe))
                continue;
            registered.emplace(
                m[1].str(),
                std::make_pair(f, static_cast<unsigned>(li + 1)));
        }
    }

    // Golden rows: {"workload", "config", "accel-key", ...
    std::map<std::string, unsigned> pinned; // key -> first row line
    static const std::regex rowRe(
        R"re(^\s*\{\s*"[^"]*"\s*,\s*"[^"]*"\s*,\s*"([^"]*)")re");
    for (std::size_t li = 0; li < golden.raw.size(); ++li) {
        std::smatch m;
        if (std::regex_search(golden.raw[li], m, rowRe))
            pinned.emplace(m[1].str(),
                           static_cast<unsigned>(li + 1));
    }

    if (registered.empty()) {
        rep.report(golden, 1, kRuleAccelRegistry,
                   "no DLVP_ACCEL(\"...\") registration sites found "
                   "in the accelerator sources");
        return;
    }
    for (const auto &[key, site] : registered) {
        if (!pinned.count(key))
            rep.report(*site.first, site.second, kRuleAccelRegistry,
                       "accelerator '" + key +
                           "' is registered but pinned by no golden "
                           "CoreStats row (no bit-identity anchor)");
    }
    for (const auto &[key, line] : pinned) {
        if (!registered.count(key))
            rep.report(golden, line, kRuleAccelRegistry,
                       "golden row pins accelerator '" + key +
                           "', which no DLVP_ACCEL site registers");
    }
}

// ---------------------------------------------------------------------
// Rule: spec-state
// ---------------------------------------------------------------------

/**
 * Identifiers appearing inside bodies of functions whose name
 * contains @p nameFragment (case-insensitive), over a component's
 * token stream. "applyFlush" bodies count as restore sites.
 */
void
collectFunctionBodyIdents(const std::vector<Token> &toks,
                          const std::vector<std::string> &fragments,
                          std::set<std::string> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || toks[i + 1].text != "(")
            continue;
        bool wanted = false;
        for (const std::string &frag : fragments)
            if (containsNoCase(toks[i].text, frag))
                wanted = true;
        if (!wanted)
            continue;
        std::size_t j = skipParens(toks, i + 1);
        // Skip qualifiers (const, noexcept, trailing return) up to
        // the body '{'; a ';' first means it was only a declaration
        // or a call.
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";")
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            continue;
        const std::size_t end = skipBraces(toks, j);
        for (std::size_t k = j + 1; k + 1 < end; ++k)
            if (toks[k].isIdent())
                out.insert(toks[k].text);
        i = end > i ? end - 1 : i;
    }
}

void
runSpecStateRule(const SourceFile &f, const SourceFile *sibling,
                 Reporter &rep)
{
    // Collect DLVP_SPEC_STATE(member) tags, skipping the macro's own
    // #define.
    struct Tag
    {
        std::string member;
        unsigned line = 0;
    };
    std::vector<Tag> tags;
    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "DLVP_SPEC_STATE" ||
            toks[i + 1].text != "(" || !toks[i + 2].isIdent() ||
            toks[i + 3].text != ")")
            continue;
        const unsigned line = toks[i].line;
        if (f.raw[line - 1].find("#define") != std::string::npos)
            continue;
        tags.push_back({toks[i + 2].text, line});
    }
    if (tags.empty())
        return;

    // Component = this file plus its sibling; evidence may live in
    // either (tags sit in headers, flush paths in the .cc).
    std::vector<const SourceFile *> component = {&f};
    if (sibling)
        component.push_back(sibling);

    std::set<std::string> snapshotIdents, restoreIdents;
    for (const SourceFile *part : component) {
        collectFunctionBodyIdents(part->tokens, {"snapshot"},
                                  snapshotIdents);
        collectFunctionBodyIdents(part->tokens,
                                  {"restore", "applyflush"},
                                  restoreIdents);
    }

    for (const Tag &tag : tags) {
        // Line-level evidence: "xSnap = member" saves, "member =
        // ...Snap..." or "member.restore(...)" restores.
        const std::regex snapAssign(
            R"(\w*[sS]nap\w*\s*=[^=].*\b)" + tag.member + R"(\b)");
        const std::regex restoreAssign(
            R"(\b)" + tag.member + R"(\b\s*=[^=].*[sS]nap)");
        const std::regex restoreCall(
            R"(\b)" + tag.member + R"(\b\.restore\()");
        bool saved = snapshotIdents.count(tag.member) > 0;
        bool restored = restoreIdents.count(tag.member) > 0;
        for (const SourceFile *part : component) {
            for (const std::string &line : part->code) {
                if (saved && restored)
                    break;
                if (!saved && std::regex_search(line, snapAssign))
                    saved = true;
                if (!restored &&
                    (std::regex_search(line, restoreAssign) ||
                     std::regex_search(line, restoreCall)))
                    restored = true;
            }
        }
        if (!saved)
            rep.report(f, tag.line, kRuleSpecState,
                       "speculative member '" + tag.member +
                           "' has no snapshot site in its component");
        if (!restored)
            rep.report(f, tag.line, kRuleSpecState,
                       "speculative member '" + tag.member +
                           "' has no restore site on the flush path");
    }
}

// ---------------------------------------------------------------------
// Rule: error-taxonomy
// ---------------------------------------------------------------------

void
runErrorTaxonomyRule(const SourceFile &f, Reporter &rep)
{
    static const std::set<std::string> kBannedCalls = {
        "abort", "terminate", "exit", "_Exit", "_exit", "quick_exit",
    };
    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (t.text == "throw") {
            // The thrown expression must be a RunError construction;
            // a bare rethrow ("throw;") is fine.
            std::string lastIdent;
            std::size_t j = i + 1;
            while (j < toks.size() &&
                   (toks[j].isIdent() || toks[j].text == "::")) {
                if (toks[j].isIdent())
                    lastIdent = toks[j].text;
                ++j;
            }
            if (j < toks.size() && toks[j].text == ";" &&
                lastIdent.empty())
                continue; // rethrow
            if (lastIdent != "RunError")
                rep.report(f, t.line, kRuleErrorTaxonomy,
                           "throw of non-RunError type; job-reachable "
                           "code must use the RunError taxonomy");
            continue;
        }
        if (!kBannedCalls.count(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue;
        if (i > 0) {
            const std::string &prev = toks[i - 1].text;
            if (prev == "." || prev == "->")
                continue;
            if (prev == "::" && (i < 2 || toks[i - 2].text != "std"))
                continue;
        }
        rep.report(f, t.line, kRuleErrorTaxonomy,
                   "call to '" + t.text +
                       "()' kills the whole process; job-reachable "
                       "code must throw RunError instead");
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
ruleEnabled(const AnalyzeConfig &config, const std::string &rule)
{
    if (config.rules.empty())
        return true;
    return std::find(config.rules.begin(), config.rules.end(), rule) !=
           config.rules.end();
}

/** The .cc for a .hh (and vice versa), when it exists on disk. */
std::optional<std::string>
siblingPath(const std::string &path)
{
    fs::path p(path);
    const std::string ext = p.extension().string();
    const char *other = ext == ".hh" ? ".cc" : ext == ".cc" ? ".hh" : "";
    if (*other == '\0')
        return std::nullopt;
    fs::path sib = p;
    sib.replace_extension(other);
    std::error_code ec;
    if (!fs::exists(sib, ec))
        return std::nullopt;
    return sib.string();
}

} // namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        kRuleDeterminism,
        kRuleStatsRegistry,
        kRuleSpecState,
        kRuleErrorTaxonomy,
        kRuleAccelRegistry,
    };
    return rules;
}

std::string
stripCommentsAndStrings(const std::string &source)
{
    std::string out;
    out.reserve(source.size());
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString
    };
    State state = State::Code;
    std::string rawDelim; // for R"delim( ... )delim"
    for (std::size_t i = 0; i < source.size(); ++i) {
        const char c = source[i];
        const char next = i + 1 < source.size() ? source[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 ||
                        (!std::isalnum(static_cast<unsigned char>(
                             source[i - 1])) &&
                         source[i - 1] != '_'))) {
                state = State::RawString;
                rawDelim.clear();
                std::size_t j = i + 2;
                while (j < source.size() && source[j] != '(')
                    rawDelim += source[j++];
                out.append(j + 1 - i, ' ');
                i = j;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                state = State::Char;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case State::String:
        case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\') {
                out += "  ";
                ++i;
                if (next == '\n')
                    out.back() = '\n';
            } else if (c == quote) {
                state = State::Code;
                out += quote;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        case State::RawString: {
            const std::string close = ")" + rawDelim + "\"";
            if (c == ')' && source.compare(i, close.size(), close) == 0) {
                state = State::Code;
                out.append(close.size(), ' ');
                i += close.size() - 1;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        }
    }
    return out;
}

std::vector<Finding>
runAnalysis(const AnalyzeConfig &config)
{
    std::vector<Finding> findings;
    Reporter rep(findings);

    // Cache loaded files so a sibling listed explicitly is parsed once.
    std::map<std::string, SourceFile> cache;
    const auto load = [&cache](const std::string &path) -> SourceFile * {
        auto it = cache.find(path);
        if (it != cache.end())
            return &it->second;
        SourceFile f;
        if (!loadFile(path, f))
            return nullptr;
        return &cache.emplace(path, std::move(f)).first->second;
    };

    for (const std::string &path : config.files) {
        SourceFile *f = load(path);
        if (!f) {
            findings.push_back({"usage", path, 0, "cannot read file"});
            continue;
        }
        SourceFile *sibling = nullptr;
        if (auto sib = siblingPath(path))
            sibling = load(*sib);
        if (ruleEnabled(config, kRuleDeterminism))
            runDeterminismRule(*f, sibling, rep);
        if (ruleEnabled(config, kRuleSpecState))
            runSpecStateRule(*f, sibling, rep);
        if (ruleEnabled(config, kRuleErrorTaxonomy))
            runErrorTaxonomyRule(*f, rep);
    }

    if (!config.coreStatsPath.empty() &&
        ruleEnabled(config, kRuleStatsRegistry)) {
        SourceFile *f = load(config.coreStatsPath);
        if (!f) {
            findings.push_back({"usage", config.coreStatsPath, 0,
                                "cannot read stats header"});
        } else {
            runStatsRegistryRule(*f, config.statsMacroName,
                                 config.statsStructName, rep);
        }
    }

    if (!config.goldenStatsPath.empty() &&
        !config.accelSourcePaths.empty() &&
        ruleEnabled(config, kRuleAccelRegistry)) {
        SourceFile *g = load(config.goldenStatsPath);
        if (!g) {
            findings.push_back({"usage", config.goldenStatsPath, 0,
                                "cannot read golden stats table"});
        } else {
            std::vector<SourceFile *> sources;
            for (const std::string &p : config.accelSourcePaths) {
                if (SourceFile *sf = load(p))
                    sources.push_back(sf);
                else
                    findings.push_back(
                        {"usage", p, 0, "cannot read file"});
            }
            runAccelRegistryRule(sources, *g, rep);
        }
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return findings;
}

void
printFindings(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    if (findings.empty())
        os << "dlvp-analyze: no findings\n";
    else
        os << "dlvp-analyze: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << "\n";
}

} // namespace dlvp::analyze
