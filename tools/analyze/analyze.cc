#include "analyze.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

#include "cache.hh"
#include "model.hh"
#include "rules.hh"

namespace fs = std::filesystem;

namespace dlvp::analyze
{

using detail::Reporter;
using detail::SourceFile;
using detail::SuppressionUse;
using detail::Token;

namespace
{

/** Folded into the cache's config hash: bump on any rule change. */
constexpr const char *kAnalyzerVersion = "dlvp-analyze-v2";

// ---------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------

/**
 * Names of unordered containers declared in this component. Walks the
 * token stream for `unordered_map< ... > name` / `unordered_set< ... >
 * name` (alias declarations via `using` are outside this net and are
 * caught at their own declaration site).
 */
std::set<std::string>
unorderedNames(const std::vector<Token> &toks)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "unordered_map" &&
            toks[i].text != "unordered_set")
            continue;
        if (toks[i + 1].text != "<")
            continue;
        std::size_t j = detail::skipAngles(toks, i + 1);
        if (j < toks.size() && toks[j].isIdent())
            names.insert(toks[j].text);
    }
    return names;
}

void
runDeterminismRule(const SourceFile &f, const SourceFile *sibling,
                   Reporter &rep)
{
    // Libc randomness / wall-clock calls. steady_clock is the
    // sanctioned timing source (monotonic, never consulted by
    // simulation logic); everything here either returns wall time or
    // hidden-seed randomness, both of which vary run to run.
    static const std::set<std::string> kBannedCalls = {
        "rand",   "srand",        "drand48", "lrand48",
        "random", "gettimeofday", "time",    "clock",
        "timespec_get", "clock_gettime", "rand_r", "localtime",
    };
    // high_resolution_clock is banned alongside system_clock: the
    // standard lets it alias the wall clock, so lockstep scheduling
    // code (batch_runner) that timed lanes with it could observe
    // different values run to run; steady_clock is the sanctioned
    // telemetry source.
    static const std::set<std::string> kBannedIdents = {
        "random_device", "system_clock", "high_resolution_clock",
    };

    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (kBannedIdents.count(t.text)) {
            rep.report(f, t.line, detail::kRuleDeterminism,
                       "'" + t.text +
                           "' is nondeterministic across runs; use a "
                           "seeded generator / steady_clock");
            continue;
        }
        if (!kBannedCalls.count(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue; // not a call
        if (i > 0) {
            const std::string &prev = toks[i - 1].text;
            if (prev == "." || prev == "->")
                continue; // member call on some other object
            if (prev == "::" &&
                (i < 2 || toks[i - 2].text != "std"))
                continue; // qualified into a non-std namespace
        }
        rep.report(f, t.line, detail::kRuleDeterminism,
                   "call to '" + t.text +
                       "()' injects wall-clock/libc randomness into "
                       "simulation code");
    }

    // Iteration over unordered containers: their order depends on
    // hash seeding, libstdc++ version, and pointer values, so any
    // stat- or report-affecting loop over one is a repeatability bug.
    std::set<std::string> unordered = unorderedNames(toks);
    if (sibling) {
        std::set<std::string> sib = unorderedNames(sibling->tokens);
        unordered.insert(sib.begin(), sib.end());
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "for" || toks[i + 1].text != "(")
            continue;
        const std::size_t end = detail::skipParens(toks, i + 1);
        // Find the range-for ':' at top parenthesis depth.
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
            const std::string &txt = toks[j].text;
            if (txt == "(" || txt == "[")
                ++depth;
            else if (txt == ")" || txt == "]")
                --depth;
            else if (txt == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon == 0)
            continue;
        // Last identifier of the range expression names the
        // container for the patterns used in this codebase
        // (`pages_`, `other.pages_`, ...).
        std::string last;
        for (std::size_t j = colon + 1; j + 1 < end; ++j)
            if (toks[j].isIdent())
                last = toks[j].text;
        if (!last.empty() && unordered.count(last)) {
            rep.report(f, toks[i].line, detail::kRuleDeterminism,
                       "range-for over unordered container '" + last +
                           "'; iteration order is not deterministic");
        }
    }

    // Pointer-keyed ordered containers: std::less<T*> compares
    // addresses, i.e. allocation order.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if ((toks[i].text != "map" && toks[i].text != "set") ||
            toks[i + 1].text != "<")
            continue;
        if (i < 2 || toks[i - 1].text != "::" ||
            toks[i - 2].text != "std")
            continue;
        // Key type = tokens up to the first top-level ',' (or '>').
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            const std::string &txt = toks[j].text;
            if (txt == "<")
                ++depth;
            else if (txt == ">") {
                if (--depth == 0)
                    break;
            } else if (txt == "," && depth == 1) {
                break;
            } else if (txt == "*" && depth == 1) {
                rep.report(f, toks[i].line, detail::kRuleDeterminism,
                           "pointer-keyed std::" + toks[i].text +
                               "; key order is allocation order, not "
                               "deterministic");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stats-registry
// ---------------------------------------------------------------------

void
runStatsRegistryRule(const SourceFile &f, const std::string &macroName,
                     const std::string &structName, Reporter &rep)
{
    // X-macro entries: from "#define <macroName>(" through the last
    // backslash-continued line.
    std::map<std::string, unsigned> macroEntries; // name -> line
    unsigned macroLine = 0;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
        const std::string &line = f.code[li];
        if (line.find("#define") == std::string::npos ||
            line.find(macroName) == std::string::npos)
            continue;
        macroLine = static_cast<unsigned>(li + 1);
        static const std::regex entryRe(R"(X\(\s*(\w+)\s*\))");
        for (std::size_t lj = li;; ++lj) {
            if (lj >= f.code.size())
                break;
            const std::string &body = f.code[lj];
            if (lj > li) {
                auto begin = std::sregex_iterator(body.begin(),
                                                  body.end(), entryRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it)
                    macroEntries.emplace(
                        (*it)[1].str(),
                        static_cast<unsigned>(lj + 1));
            }
            const auto lastNonSpace = body.find_last_not_of(" \t");
            if (lastNonSpace == std::string::npos ||
                body[lastNonSpace] != '\\')
                break;
        }
        break;
    }
    if (macroLine == 0) {
        rep.report(f, 1, detail::kRuleStatsRegistry,
                   "registry X-macro '" + macroName + "' not found");
        return;
    }

    // Struct fields: the brace-matched region after "struct <name>".
    const std::vector<Token> &toks = f.tokens;
    std::size_t bodyBegin = toks.size(), bodyEnd = toks.size();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text == "struct" && toks[i + 1].text == structName &&
            toks[i + 2].text == "{") {
            bodyBegin = i + 2;
            bodyEnd = detail::skipBraces(toks, i + 2);
            break;
        }
    }
    if (bodyBegin == toks.size()) {
        rep.report(f, macroLine, detail::kRuleStatsRegistry,
                   "struct '" + structName + "' not found");
        return;
    }
    const unsigned structFirstLine = toks[bodyBegin].line;
    const unsigned structLastLine = toks[bodyEnd - 1].line;

    struct FieldInfo
    {
        unsigned line = 0;
        bool zeroInit = false;
    };
    std::map<std::string, FieldInfo> fields;
    // Data members are single-line "Type name = init;" declarations;
    // anything with parentheses on the line is a function.
    static const std::regex fieldRe(
        R"(^\s*[A-Za-z_][\w:]*\s+(\w+)\s*(=\s*([^;]*?)\s*)?;)");
    for (unsigned ln = structFirstLine; ln <= structLastLine; ++ln) {
        const std::string &line = f.code[ln - 1];
        if (line.find('(') != std::string::npos ||
            line.find("using") != std::string::npos ||
            line.find("static") != std::string::npos)
            continue;
        std::smatch m;
        if (!std::regex_search(line, m, fieldRe))
            continue;
        FieldInfo info;
        info.line = ln;
        info.zeroInit = m[2].matched && m[3].str() == "0";
        fields.emplace(m[1].str(), info);
    }

    for (const auto &[name, info] : fields) {
        if (!macroEntries.count(name))
            rep.report(f, info.line, detail::kRuleStatsRegistry,
                       "field '" + name + "' missing from " +
                           macroName +
                           " (sweeps/goldens will silently skip it)");
        if (!info.zeroInit)
            rep.report(f, info.line, detail::kRuleStatsRegistry,
                       "field '" + name +
                           "' is not zero-initialized ('= 0')");
    }
    for (const auto &[name, line] : macroEntries) {
        if (!fields.count(name))
            rep.report(f, line, detail::kRuleStatsRegistry,
                       "registry entry '" + name +
                           "' names no field of " + structName);
    }
}

// ---------------------------------------------------------------------
// Rule: accel-registry
// ---------------------------------------------------------------------

/**
 * Cross-check the LoadAccelerator registry against the golden
 * CoreStats table: every key registered under DLVP_ACCEL("<key>")
 * must appear in some golden row's accelerator column, and every
 * golden accelerator column must name a registered key. A registered
 * accelerator without a golden row has no bit-identity anchor — the
 * exact gap this lint closes.
 *
 * Both sides of the check live inside string literals, which the
 * shared stripper blanks, so this rule scans raw lines.
 */
void
runAccelRegistryRule(const std::vector<SourceFile *> &sources,
                     const SourceFile &golden, Reporter &rep)
{
    // key -> first registration site (file, line)
    std::map<std::string, std::pair<const SourceFile *, unsigned>>
        registered;
    static const std::regex markerRe(
        R"re(DLVP_ACCEL\(\s*"([^"]*)"\s*\))re");
    for (const SourceFile *f : sources) {
        for (std::size_t li = 0; li < f->raw.size(); ++li) {
            const std::string &line = f->raw[li];
            // Comments (stripped from .code) and the marker's own
            // #define don't register anything; only use sites do.
            if (li >= f->code.size() ||
                f->code[li].find("DLVP_ACCEL") == std::string::npos)
                continue;
            if (line.find("#define") != std::string::npos)
                continue;
            std::smatch m;
            if (!std::regex_search(line, m, markerRe))
                continue;
            registered.emplace(
                m[1].str(),
                std::make_pair(f, static_cast<unsigned>(li + 1)));
        }
    }

    // Golden rows: {"workload", "config", "accel-key", ...
    std::map<std::string, unsigned> pinned; // key -> first row line
    static const std::regex rowRe(
        R"re(^\s*\{\s*"[^"]*"\s*,\s*"[^"]*"\s*,\s*"([^"]*)")re");
    for (std::size_t li = 0; li < golden.raw.size(); ++li) {
        std::smatch m;
        if (std::regex_search(golden.raw[li], m, rowRe))
            pinned.emplace(m[1].str(),
                           static_cast<unsigned>(li + 1));
    }

    if (registered.empty()) {
        rep.report(golden, 1, detail::kRuleAccelRegistry,
                   "no DLVP_ACCEL(\"...\") registration sites found "
                   "in the accelerator sources");
        return;
    }
    for (const auto &[key, site] : registered) {
        if (!pinned.count(key))
            rep.report(*site.first, site.second,
                       detail::kRuleAccelRegistry,
                       "accelerator '" + key +
                           "' is registered but pinned by no golden "
                           "CoreStats row (no bit-identity anchor)");
    }
    for (const auto &[key, line] : pinned) {
        if (!registered.count(key))
            rep.report(golden, line, detail::kRuleAccelRegistry,
                       "golden row pins accelerator '" + key +
                           "', which no DLVP_ACCEL site registers");
    }
}

// ---------------------------------------------------------------------
// Rule: spec-state
// ---------------------------------------------------------------------

/**
 * Identifiers appearing inside bodies of functions whose name
 * contains one of @p fragments (case-insensitive), over a component's
 * token stream. "applyFlush" bodies count as restore sites.
 */
void
collectFunctionBodyIdents(const std::vector<Token> &toks,
                          const std::vector<std::string> &fragments,
                          std::set<std::string> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].isIdent() || toks[i + 1].text != "(")
            continue;
        bool wanted = false;
        for (const std::string &frag : fragments)
            if (detail::containsNoCase(toks[i].text, frag))
                wanted = true;
        if (!wanted)
            continue;
        std::size_t j = detail::skipParens(toks, i + 1);
        // Skip qualifiers (const, noexcept, trailing return) up to
        // the body '{'; a ';' first means it was only a declaration
        // or a call.
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";")
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            continue;
        const std::size_t end = detail::skipBraces(toks, j);
        for (std::size_t k = j + 1; k + 1 < end; ++k)
            if (toks[k].isIdent())
                out.insert(toks[k].text);
        i = end > i ? end - 1 : i;
    }
}

void
runSpecStateRule(const SourceFile &f, const SourceFile *sibling,
                 Reporter &rep)
{
    // Collect DLVP_SPEC_STATE(member) tags, skipping the macro's own
    // #define.
    struct Tag
    {
        std::string member;
        unsigned line = 0;
    };
    std::vector<Tag> tags;
    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text != "DLVP_SPEC_STATE" ||
            toks[i + 1].text != "(" || !toks[i + 2].isIdent() ||
            toks[i + 3].text != ")")
            continue;
        const unsigned line = toks[i].line;
        if (f.raw[line - 1].find("#define") != std::string::npos)
            continue;
        tags.push_back({toks[i + 2].text, line});
    }
    if (tags.empty())
        return;

    // Component = this file plus its sibling; evidence may live in
    // either (tags sit in headers, flush paths in the .cc).
    std::vector<const SourceFile *> component = {&f};
    if (sibling)
        component.push_back(sibling);

    std::set<std::string> snapshotIdents, restoreIdents;
    for (const SourceFile *part : component) {
        collectFunctionBodyIdents(part->tokens, {"snapshot"},
                                  snapshotIdents);
        collectFunctionBodyIdents(part->tokens,
                                  {"restore", "applyflush"},
                                  restoreIdents);
    }

    for (const Tag &tag : tags) {
        // Line-level evidence: "xSnap = member" saves, "member =
        // ...Snap..." or "member.restore(...)" restores.
        const std::regex snapAssign(
            R"(\w*[sS]nap\w*\s*=[^=].*\b)" + tag.member + R"(\b)");
        const std::regex restoreAssign(
            R"(\b)" + tag.member + R"(\b\s*=[^=].*[sS]nap)");
        const std::regex restoreCall(
            R"(\b)" + tag.member + R"(\b\.restore\()");
        bool saved = snapshotIdents.count(tag.member) > 0;
        bool restored = restoreIdents.count(tag.member) > 0;
        for (const SourceFile *part : component) {
            for (const std::string &line : part->code) {
                if (saved && restored)
                    break;
                if (!saved && std::regex_search(line, snapAssign))
                    saved = true;
                if (!restored &&
                    (std::regex_search(line, restoreAssign) ||
                     std::regex_search(line, restoreCall)))
                    restored = true;
            }
        }
        if (!saved)
            rep.report(f, tag.line, detail::kRuleSpecState,
                       "speculative member '" + tag.member +
                           "' has no snapshot site in its component");
        if (!restored)
            rep.report(f, tag.line, detail::kRuleSpecState,
                       "speculative member '" + tag.member +
                           "' has no restore site on the flush path");
    }
}

// ---------------------------------------------------------------------
// Rule: error-taxonomy
// ---------------------------------------------------------------------

void
runErrorTaxonomyRule(const SourceFile &f, Reporter &rep)
{
    static const std::set<std::string> kBannedCalls = {
        "abort", "terminate", "exit", "_Exit", "_exit", "quick_exit",
    };
    const std::vector<Token> &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!t.isIdent())
            continue;
        if (t.text == "throw") {
            // The thrown expression must be a RunError construction;
            // a bare rethrow ("throw;") is fine.
            std::string lastIdent;
            std::size_t j = i + 1;
            while (j < toks.size() &&
                   (toks[j].isIdent() || toks[j].text == "::")) {
                if (toks[j].isIdent())
                    lastIdent = toks[j].text;
                ++j;
            }
            if (j < toks.size() && toks[j].text == ";" &&
                lastIdent.empty())
                continue; // rethrow
            if (lastIdent != "RunError")
                rep.report(f, t.line, detail::kRuleErrorTaxonomy,
                           "throw of non-RunError type; job-reachable "
                           "code must use the RunError taxonomy");
            continue;
        }
        if (!kBannedCalls.count(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue;
        if (i > 0) {
            const std::string &prev = toks[i - 1].text;
            if (prev == "." || prev == "->")
                continue;
            if (prev == "::" && (i < 2 || toks[i - 2].text != "std"))
                continue;
        }
        rep.report(f, t.line, detail::kRuleErrorTaxonomy,
                   "call to '" + t.text +
                       "()' kills the whole process; job-reachable "
                       "code must throw RunError instead");
    }
}

// ---------------------------------------------------------------------
// Rule: stale-suppression
// ---------------------------------------------------------------------

/**
 * Every allow() comment must earn its keep: each rule it names must
 * be a real rule, and — when that rule actually ran this analysis —
 * must have silenced at least one would-be finding. The rule is
 * self-exempt (an unused allow of stale-suppression itself is not
 * detected; one stale comment cannot hide another's staleness).
 */
void
runStaleSuppressionRule(const std::vector<const SourceFile *> &files,
                        const std::set<SuppressionUse> &used,
                        const std::set<std::string> &ranRules,
                        Reporter &rep)
{
    const auto &known = allRules();
    for (const SourceFile *f : files) {
        for (const auto &[origin, rules] : f->allowAtOrigin) {
            for (const std::string &rule : rules) {
                if (std::find(known.begin(), known.end(), rule) ==
                    known.end()) {
                    const std::string hint = suggestRule(rule);
                    rep.report(*f, origin,
                               detail::kRuleStaleSuppression,
                               "suppression names unknown rule '" +
                                   rule + "'" +
                                   (hint.empty()
                                        ? ""
                                        : "; did you mean '" + hint +
                                              "'?"));
                    continue;
                }
                if (rule == detail::kRuleStaleSuppression)
                    continue;
                if (!ranRules.count(rule))
                    continue; // can't judge a rule that didn't run
                if (!used.count({f->path, origin, rule}))
                    rep.report(*f, origin,
                               detail::kRuleStaleSuppression,
                               "suppression of '" + rule +
                                   "' silences nothing on this or "
                                   "the next line; delete it or move "
                                   "it to the offending site");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

bool
ruleEnabled(const AnalyzeConfig &config, const std::string &rule)
{
    if (config.rules.empty())
        return true;
    return std::find(config.rules.begin(), config.rules.end(), rule) !=
           config.rules.end();
}

bool
isSourceExt(const std::string &path)
{
    const std::string ext = fs::path(path).extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp";
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t prev = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = prev;
        }
    }
    return row[b.size()];
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

} // namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        detail::kRuleDeterminism,
        detail::kRuleStatsRegistry,
        detail::kRuleSpecState,
        detail::kRuleErrorTaxonomy,
        detail::kRuleAccelRegistry,
        detail::kRuleLayering,
        detail::kRuleLockDiscipline,
        detail::kRuleHotPath,
        detail::kRuleStaleSuppression,
    };
    return rules;
}

std::string
suggestRule(const std::string &name)
{
    std::string best;
    std::size_t bestDist = std::string::npos;
    for (const std::string &rule : allRules()) {
        const std::size_t d = editDistance(name, rule);
        if (d < bestDist) {
            bestDist = d;
            best = rule;
        }
    }
    // Same tolerance as dlvp_cli's config did-you-mean: a third of
    // the name's length, but never tighter than 2 edits.
    const std::size_t limit = std::max<std::size_t>(2, name.size() / 3);
    return bestDist <= limit ? best : "";
}

std::string
stripCommentsAndStrings(const std::string &source)
{
    std::string out;
    out.reserve(source.size());
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString
    };
    State state = State::Code;
    std::string rawDelim; // for R"delim( ... )delim"
    for (std::size_t i = 0; i < source.size(); ++i) {
        const char c = source[i];
        const char next = i + 1 < source.size() ? source[i + 1] : '\0';
        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 ||
                        (!std::isalnum(static_cast<unsigned char>(
                             source[i - 1])) &&
                         source[i - 1] != '_'))) {
                state = State::RawString;
                rawDelim.clear();
                std::size_t j = i + 2;
                while (j < source.size() && source[j] != '(')
                    rawDelim += source[j++];
                out.append(j + 1 - i, ' ');
                i = j;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                state = State::Char;
                out += '\'';
            } else {
                out += c;
            }
            break;
        case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case State::String:
        case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\') {
                out += "  ";
                ++i;
                if (next == '\n')
                    out.back() = '\n';
            } else if (c == quote) {
                state = State::Code;
                out += quote;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        case State::RawString: {
            const std::string close = ")" + rawDelim + "\"";
            if (c == ')' && source.compare(i, close.size(), close) == 0) {
                state = State::Code;
                out.append(close.size(), ' ');
                i += close.size() - 1;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        }
    }
    return out;
}

std::vector<Finding>
runAnalysis(const AnalyzeConfig &config)
{
    using namespace detail;

    std::vector<Finding> findings;
    Reporter rep(findings);

    // ---- Manifest (layering) -------------------------------------
    LayerManifest manifest;
    bool haveManifest = false;
    std::vector<Finding> manifestFindings;
    if (!config.layersPath.empty() &&
        ruleEnabled(config, kRuleLayering)) {
        if (loadLayerManifest(config.layersPath, manifest,
                              manifestFindings))
            haveManifest = true;
        else
            findings.push_back({"usage", config.layersPath, 0,
                                "cannot read layering manifest"});
    }

    // ---- Model: every file is loaded exactly once ----------------
    std::map<std::string, SourceFile> modelCache;
    const auto load =
        [&modelCache](const std::string &path) -> SourceFile * {
        auto it = modelCache.find(path);
        if (it != modelCache.end())
            return &it->second;
        SourceFile f;
        if (!loadFile(path, f))
            return nullptr;
        return &modelCache.emplace(path, std::move(f)).first->second;
    };

    // Primary files, first occurrence wins.
    std::vector<std::string> primaries;
    {
        std::set<std::string> seen;
        for (const std::string &p : config.files)
            if (seen.insert(p).second)
                primaries.push_back(p);
    }

    // The set of rules that will actually execute; the staleness
    // check only judges suppressions of rules that ran.
    std::set<std::string> ranRules;
    for (const char *r : {kRuleDeterminism, kRuleSpecState,
                          kRuleErrorTaxonomy, kRuleLockDiscipline})
        if (ruleEnabled(config, r))
            ranRules.insert(r);
    if (haveManifest && ruleEnabled(config, kRuleLayering))
        ranRules.insert(kRuleLayering);
    if (!config.coreStatsPath.empty() &&
        ruleEnabled(config, kRuleStatsRegistry))
        ranRules.insert(kRuleStatsRegistry);
    if (!config.goldenStatsPath.empty() &&
        !config.accelSourcePaths.empty() &&
        ruleEnabled(config, kRuleAccelRegistry))
        ranRules.insert(kRuleAccelRegistry);
    if (ruleEnabled(config, kRuleHotPath))
        ranRules.insert(kRuleHotPath);

    // ---- Config hash: gates the whole incremental cache ----------
    std::uint64_t configHash = fnv1a(kAnalyzerVersion);
    for (const std::string &r : ranRules)
        configHash = fnv1a(r, configHash ^ 0x9e3779b97f4a7c15ULL);
    if (ruleEnabled(config, kRuleStaleSuppression))
        configHash = fnv1a(kRuleStaleSuppression, configHash);
    configHash = fnv1a(config.statsMacroName, configHash);
    configHash = fnv1a(config.statsStructName, configHash);
    configHash = fnv1a(config.rootPath, configHash);
    configHash = fnv1a(manifest.rawText, configHash);
    configHash = fnv1a(config.coreStatsPath, configHash);
    configHash = fnv1a(config.goldenStatsPath, configHash);
    for (const std::string &p : config.accelSourcePaths)
        configHash = fnv1a(p, configHash ^ 0xff51afd7ed558ccdULL);

    AnalysisCache oldCache, newCache;
    newCache.configHash = configHash;
    const bool haveCache =
        !config.cachePath.empty() &&
        loadAnalysisCache(config.cachePath, configHash, oldCache);

    // ---- Per-file phase ------------------------------------------
    std::vector<const SourceFile *> loadedPrimaries;
    for (const std::string &path : primaries) {
        SourceFile *f = load(path);
        if (!f) {
            findings.push_back({"usage", path, 0, "cannot read file"});
            continue;
        }
        loadedPrimaries.push_back(f);
        SourceFile *sibling = nullptr;
        if (auto sib = siblingPath(path))
            sibling = load(*sib);
        const std::uint64_t sibHash =
            sibling ? sibling->contentHash : 0;

        if (haveCache) {
            const auto it = oldCache.perFile.find(path);
            if (it != oldCache.perFile.end() &&
                it->second.hash == f->contentHash &&
                it->second.sibHash == sibHash) {
                findings.insert(findings.end(),
                                it->second.findings.begin(),
                                it->second.findings.end());
                for (const SuppressionUse &u : it->second.uses)
                    rep.recordUse(u);
                newCache.perFile.emplace(path, it->second);
                continue;
            }
        }

        std::vector<Finding> local;
        Reporter localRep(local);
        if (ruleEnabled(config, kRuleDeterminism))
            runDeterminismRule(*f, sibling, localRep);
        if (ruleEnabled(config, kRuleSpecState))
            runSpecStateRule(*f, sibling, localRep);
        if (ruleEnabled(config, kRuleErrorTaxonomy))
            runErrorTaxonomyRule(*f, localRep);
        if (haveManifest)
            runLayeringRule(*f, manifest, config.rootPath, localRep);
        if (ruleEnabled(config, kRuleLockDiscipline))
            runLockDisciplineRule(*f, sibling, localRep);

        FileCacheEntry entry;
        entry.hash = f->contentHash;
        entry.sibHash = sibHash;
        entry.findings = local;
        entry.uses.assign(localRep.uses().begin(),
                          localRep.uses().end());
        findings.insert(findings.end(), local.begin(), local.end());
        for (const SuppressionUse &u : localRep.uses())
            rep.recordUse(u);
        newCache.perFile.emplace(path, std::move(entry));
    }
    findings.insert(findings.end(), manifestFindings.begin(),
                    manifestFindings.end());

    // ---- Global phase --------------------------------------------
    // Out-of-band inputs are loaded (and hashed) up front so the
    // global key covers them even on the replay path.
    SourceFile *coreStats = nullptr;
    if (!config.coreStatsPath.empty() &&
        ruleEnabled(config, kRuleStatsRegistry)) {
        coreStats = load(config.coreStatsPath);
        if (!coreStats)
            findings.push_back({"usage", config.coreStatsPath, 0,
                                "cannot read stats header"});
    }
    SourceFile *golden = nullptr;
    std::vector<SourceFile *> accelSources;
    if (!config.goldenStatsPath.empty() &&
        !config.accelSourcePaths.empty() &&
        ruleEnabled(config, kRuleAccelRegistry)) {
        golden = load(config.goldenStatsPath);
        if (!golden)
            findings.push_back({"usage", config.goldenStatsPath, 0,
                                "cannot read golden stats table"});
        for (const std::string &p : config.accelSourcePaths) {
            if (SourceFile *sf = load(p))
                accelSources.push_back(sf);
            else
                findings.push_back({"usage", p, 0, "cannot read file"});
        }
    }

    std::uint64_t globalHash = configHash;
    for (const auto &[path, file] : modelCache) {
        globalHash = fnv1a(path, globalHash);
        globalHash ^= file.contentHash;
        globalHash *= 1099511628211ULL;
    }

    const bool wantGlobal =
        coreStats || golden || ruleEnabled(config, kRuleHotPath) ||
        ruleEnabled(config, kRuleStaleSuppression);
    if (wantGlobal && haveCache && oldCache.global.valid &&
        oldCache.global.hash == globalHash) {
        findings.insert(findings.end(),
                        oldCache.global.findings.begin(),
                        oldCache.global.findings.end());
        newCache.global = oldCache.global;
    } else if (wantGlobal) {
        std::vector<Finding> globalFindings;
        Reporter globalRep(globalFindings);

        if (coreStats)
            runStatsRegistryRule(*coreStats, config.statsMacroName,
                                 config.statsStructName, globalRep);
        if (golden)
            runAccelRegistryRule(accelSources, *golden, globalRep);

        if (ruleEnabled(config, kRuleHotPath)) {
            std::vector<const SourceFile *> indexed;
            for (const auto &[path, file] : modelCache)
                if (isSourceExt(path))
                    indexed.push_back(&file);
            const FunctionIndex index = buildFunctionIndex(indexed);
            runHotPathRule(index, globalRep);
        }

        if (ruleEnabled(config, kRuleStaleSuppression)) {
            std::set<SuppressionUse> used = rep.uses();
            used.insert(globalRep.uses().begin(),
                        globalRep.uses().end());
            runStaleSuppressionRule(loadedPrimaries, used, ranRules,
                                    globalRep);
        }

        findings.insert(findings.end(), globalFindings.begin(),
                        globalFindings.end());
        newCache.global.valid = true;
        newCache.global.hash = globalHash;
        newCache.global.findings = std::move(globalFindings);
        newCache.global.uses.assign(globalRep.uses().begin(),
                                    globalRep.uses().end());
    }

    if (!config.cachePath.empty())
        saveAnalysisCache(config.cachePath, newCache);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return findings;
}

void
printFindings(const std::vector<Finding> &findings, std::ostream &os)
{
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    if (findings.empty())
        os << "dlvp-analyze: no findings\n";
    else
        os << "dlvp-analyze: " << findings.size() << " finding"
           << (findings.size() == 1 ? "" : "s") << "\n";
}

void
printFindingsJson(const std::vector<Finding> &findings,
                  std::ostream &os)
{
    std::string out = "{\"schema\":\"dlvp-analyze-v1\",\"findings\":[";
    bool first = true;
    for (const Finding &f : findings) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"rule\":\"";
        appendJsonEscaped(out, f.rule);
        out += "\",\"file\":\"";
        appendJsonEscaped(out, f.file);
        out += "\",\"line\":";
        out += std::to_string(f.line);
        out += ",\"message\":\"";
        appendJsonEscaped(out, f.message);
        out += "\"}";
    }
    out += "],\"count\":";
    out += std::to_string(findings.size());
    out += "}";
    os << out << "\n";
}

} // namespace dlvp::analyze
