/**
 * @file
 * Incremental result cache for dlvp-analyze (DESIGN.md §10).
 *
 * Soundness model: findings are grouped by what can invalidate them.
 *
 *   per-file  determinism, spec-state, error-taxonomy, layering,
 *             lock-discipline — a file's findings depend only on the
 *             file itself and its .hh/.cc sibling, so they replay
 *             when both content hashes match. (Layering also depends
 *             on the manifest; the manifest bytes are folded into
 *             the config hash, which gates the whole cache.)
 *   global    stats-registry, accel-registry, hot-path,
 *             stale-suppression — these see the whole analyzed set
 *             (the call-graph walk can cross any include edge, stale
 *             detection needs every rule's suppression usage), so
 *             they replay only when the combined hash of every
 *             analyzed file plus the out-of-band inputs (stats
 *             header, golden table, accel sources) matches.
 *
 * Suppression uses are cached alongside findings: a cache hit must
 * feed the stale-suppression rule exactly what a cold run would.
 *
 * The format is a line-oriented text file, versioned by the header
 * token; any parse doubt or version/config mismatch discards the
 * cache (worst case: one cold run).
 */

#ifndef DLVP_TOOLS_ANALYZE_CACHE_HH
#define DLVP_TOOLS_ANALYZE_CACHE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model.hh"

namespace dlvp::analyze::detail
{

struct FileCacheEntry
{
    std::uint64_t hash = 0;    ///< content hash of the file
    std::uint64_t sibHash = 0; ///< content hash of its sibling (0: none)
    std::vector<Finding> findings;
    std::vector<SuppressionUse> uses;
};

struct GlobalCacheEntry
{
    bool valid = false;
    std::uint64_t hash = 0; ///< combined hash of every global input
    std::vector<Finding> findings;
    std::vector<SuppressionUse> uses;
};

struct AnalysisCache
{
    std::uint64_t configHash = 0;
    std::map<std::string, FileCacheEntry> perFile; ///< keyed by path
    GlobalCacheEntry global;
};

/**
 * Load @p path into @p out. Returns false (out untouched) when the
 * file is missing, malformed, from another format version, or was
 * written under a different config hash.
 */
bool loadAnalysisCache(const std::string &path,
                       std::uint64_t expectedConfigHash,
                       AnalysisCache &out);

/** Rewrite @p path atomically (temp + rename). */
bool saveAnalysisCache(const std::string &path,
                       const AnalysisCache &cache);

} // namespace dlvp::analyze::detail

#endif // DLVP_TOOLS_ANALYZE_CACHE_HH
