/**
 * @file
 * Internal source model shared by the dlvp-analyze rule families.
 *
 * A SourceFile is the unit every rule consumes: raw lines (for
 * suppression comments and registration markers that live inside
 * string literals), comment/string-stripped lines, a flat token
 * stream, the parsed `#include` edges (the cross-file graph rules'
 * input), the parsed suppression map, and an FNV-1a content hash
 * (the incremental cache's key).
 *
 * Everything here is analyzer-internal — the public surface stays in
 * analyze.hh — but it lives in a named namespace (not an anonymous
 * one) so the per-file rules (analyze.cc), the cross-file graph rules
 * (graph_rules.cc), and the cache (cache.cc) can share one model.
 */

#ifndef DLVP_TOOLS_ANALYZE_MODEL_HH
#define DLVP_TOOLS_ANALYZE_MODEL_HH

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "analyze.hh"

namespace dlvp::analyze::detail
{

/** One token of stripped source: an identifier or a punctuator. */
struct Token
{
    std::string text;
    unsigned line = 0;

    bool isIdent() const
    {
        const char c = text.empty() ? '\0' : text[0];
        return c == '_' || std::isalpha(static_cast<unsigned char>(c));
    }
};

/** One `#include` directive, as written. */
struct Include
{
    std::string target; ///< path between the quotes/brackets
    unsigned line = 0;
    bool quoted = false; ///< `"..."` (project) vs `<...>` (system)
};

struct SourceFile
{
    std::string path;
    std::vector<std::string> raw;  ///< raw lines, index 0 = line 1
    std::vector<std::string> code; ///< comment/string-stripped lines
    std::vector<Token> tokens;     ///< tokens of the stripped text
    std::vector<Include> includes; ///< parsed include directives
    std::uint64_t contentHash = 0; ///< FNV-1a of the raw bytes

    /**
     * Suppressions: covered line -> rule -> line of the allow()
     * comment that granted it. The origin line is what the
     * stale-suppression rule keys usage on.
     */
    std::map<unsigned, std::map<std::string, unsigned>> allow;

    /** Allow-comment line -> every rule name it lists (even unknown). */
    std::map<unsigned, std::set<std::string>> allowAtOrigin;
};

std::vector<std::string> splitLines(const std::string &text);
std::vector<Token> tokenize(const std::vector<std::string> &lines);

/** Load + strip + tokenize + parse includes/suppressions. */
bool loadFile(const std::string &path, SourceFile &out);

/** 64-bit FNV-1a, the content/config hash used by the cache. */
std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t seed = 1469598103934665603ULL);

/** The .cc for a .hh (and vice versa), when it exists on disk. */
std::optional<std::string> siblingPath(const std::string &path);

/**
 * A suppression that earned its keep: the allow() comment at
 * originLine in file silenced at least one would-be finding of rule.
 */
struct SuppressionUse
{
    std::string file;
    unsigned originLine = 0;
    std::string rule;

    bool operator<(const SuppressionUse &o) const
    {
        return std::tie(file, originLine, rule) <
               std::tie(o.file, o.originLine, o.rule);
    }
    bool operator==(const SuppressionUse &) const = default;
};

/**
 * Sink for rule findings. Applies the per-line suppression map and
 * records which allow() comments actually fired, so the
 * stale-suppression rule can flag the ones that never do.
 */
class Reporter
{
  public:
    explicit Reporter(std::vector<Finding> &out) : out_(out) {}

    void report(const SourceFile &f, unsigned line,
                const std::string &rule, std::string message);

    /** Replay a cached suppression use (incremental cache hits). */
    void recordUse(SuppressionUse use) { uses_.insert(std::move(use)); }

    const std::set<SuppressionUse> &uses() const { return uses_; }

  private:
    std::vector<Finding> &out_;
    std::set<SuppressionUse> uses_;
};

// Token-stream helpers: index just past the bracket matching toks[i]
// (toks.size() when unbalanced).
std::size_t skipAngles(const std::vector<Token> &toks, std::size_t i);
std::size_t skipParens(const std::vector<Token> &toks, std::size_t i);
std::size_t skipBraces(const std::vector<Token> &toks, std::size_t i);

bool containsNoCase(const std::string &haystack,
                    const std::string &needle);

} // namespace dlvp::analyze::detail

#endif // DLVP_TOOLS_ANALYZE_MODEL_HH
