/**
 * @file
 * dlvp-analyze: repo-specific static analysis for the DLVP simulator.
 *
 * Nine rule families guard the repo's core contract — bit-identical
 * CoreStats across thread counts, retries, and engine rewrites
 * (DESIGN.md §10):
 *
 *   determinism       no wall-clock/libc randomness in simulation
 *                     code, no iteration over unordered containers
 *                     (their order varies across libstdc++ versions
 *                     and ASLR runs), no pointer-keyed ordered
 *                     containers (pointer order is allocation order).
 *   stats-registry    every CoreStats field appears in the
 *                     DLVP_CORE_STATS_FIELDS X-macro and is
 *                     zero-initialized; every X-macro entry names a
 *                     real field.
 *   spec-state        every member tagged DLVP_SPEC_STATE has both a
 *                     snapshot site and a restore site in its
 *                     component (header + sibling .cc) — the flush
 *                     path must be able to rewind it.
 *   error-taxonomy    job-reachable code throws only RunError (or
 *                     rethrows); no abort()/exit()/terminate() outside
 *                     the logging layer.
 *   accel-registry    every LoadAccelerator key registered under a
 *                     DLVP_ACCEL("...") marker is pinned by at least
 *                     one golden CoreStats row, and every golden row
 *                     names a registered key.
 *   layering          the include graph respects the committed
 *                     dependency DAG in tools/analyze/layers.txt; any
 *                     back-edge (core including serve, ...) or
 *                     manifest cycle is a finding.
 *   lock-discipline   every access to a DLVP_GUARDED_BY member sits
 *                     lexically inside a scope holding the named
 *                     mutex (lock_guard/unique_lock/shared_lock/
 *                     scoped_lock) or a DLVP_REQUIRES-tagged
 *                     function; see common/annotations.hh.
 *   hot-path          nothing reachable from a DLVP_HOT function may
 *                     allocate, lock, or do I/O — the per-cycle
 *                     simulation loop and the flattened probe path
 *                     stay pure.
 *   stale-suppression an allow() comment that suppresses nothing, or
 *                     names an unknown rule, is itself a finding.
 *
 * Findings on a line are suppressed by a trailing or preceding
 * comment `// dlvp-analyze: allow(<rule>[,<rule>...])`.
 *
 * The analysis is token/regex level over comment- and string-stripped
 * source — the same altitude as gem5's style checker and ChampSim's
 * config lints — so it runs in milliseconds with no compiler
 * dependency and is immune to build flags. compile_commands.json
 * (exported by every configured build tree) can supply the file list,
 * and a per-file content-hash cache (--cache) makes warm re-runs
 * cheap enough for every ci_check.
 */

#ifndef DLVP_TOOLS_ANALYZE_ANALYZE_HH
#define DLVP_TOOLS_ANALYZE_ANALYZE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dlvp::analyze
{

/** One lint finding, printable as "file:line: [rule] message". */
struct Finding
{
    std::string rule;
    std::string file;
    unsigned line = 0;
    std::string message;

    bool operator==(const Finding &) const = default;
};

struct AnalyzeConfig
{
    /**
     * Files to analyze (absolute or cwd-relative). The per-file rules
     * run over each; sibling files (same stem, .hh/.cc) are consulted
     * for cross-file evidence even when not listed.
     */
    std::vector<std::string> files;

    /**
     * Repo root for mapping files to layering components
     * (src/<component>, tools, bench, examples, tests).
     */
    std::string rootPath = ".";

    /**
     * Layering manifest (tools/analyze/layers.txt format); empty
     * disables the layering rule.
     */
    std::string layersPath;

    /**
     * Incremental cache file; empty runs cold. A populated cache
     * replays per-file findings whose file + sibling hashes match and
     * the cross-file findings when the whole analyzed set matches.
     */
    std::string cachePath;

    /**
     * Path of the stats header holding the registry X-macro and the
     * struct it mirrors; empty disables the stats-registry rule.
     */
    std::string coreStatsPath;
    std::string statsMacroName = "DLVP_CORE_STATS_FIELDS";
    std::string statsStructName = "CoreStats";

    /**
     * Files scanned for DLVP_ACCEL("<key>") registration markers
     * (the accel-registry rule); empty disables the rule.
     */
    std::vector<std::string> accelSourcePaths;

    /**
     * Golden CoreStats table (.inc) whose rows pin accelerator keys
     * in their third column; empty disables the accel-registry rule.
     */
    std::string goldenStatsPath;

    /** Restrict to these rules; empty = all. */
    std::vector<std::string> rules;
};

/** All rule names, in reporting order. */
const std::vector<std::string> &allRules();

/**
 * Closest known rule name to @p name by edit distance (the same
 * did-you-mean contract as dlvp_cli's config lookup); empty when
 * nothing is plausibly close.
 */
std::string suggestRule(const std::string &name);

/** Run the configured analysis; findings are sorted by file:line. */
std::vector<Finding> runAnalysis(const AnalyzeConfig &config);

/** "file:line: [rule] message" per finding plus a summary line. */
void printFindings(const std::vector<Finding> &findings,
                   std::ostream &os);

/**
 * Machine-readable output: one JSON object with a schema marker, the
 * findings array, and the count. Stable field order, escaped strings.
 */
void printFindingsJson(const std::vector<Finding> &findings,
                       std::ostream &os);

/**
 * Comment/string stripping shared by every rule: comments and
 * literal contents are blanked with spaces so token scans cannot
 * match inside them, while line numbers and suppression comments
 * (parsed from the raw text first) are preserved. Exposed for tests.
 */
std::string stripCommentsAndStrings(const std::string &source);

} // namespace dlvp::analyze

#endif // DLVP_TOOLS_ANALYZE_ANALYZE_HH
