/**
 * @file
 * dlvp-analyze CLI: run the repo's static-analysis rules over the
 * source tree (or an explicit file list) and exit nonzero on findings.
 *
 *   dlvp-analyze --root .                        # lint the whole tree
 *   dlvp-analyze --compile-commands build/compile_commands.json
 *   dlvp-analyze --rule determinism src/trace/memory_image.cc
 *   dlvp-analyze --cache build/analyze.cache --json   # CI mode
 *   dlvp-analyze --core-stats tests/fixtures/analyze/bad_stats.hh \
 *                --rule stats-registry            # fixture mode
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hh"

namespace fs = std::filesystem;
using dlvp::analyze::AnalyzeConfig;
using dlvp::analyze::Finding;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: dlvp-analyze [options] [files...]\n"
          "  --root <dir>              repo root to scan (default: .)\n"
          "  --compile-commands <json> add translation units from a\n"
          "                            compile_commands.json\n"
          "  --layers <txt>            layering manifest (default:\n"
          "                            <root>/tools/analyze/layers.txt;\n"
          "                            'none' disables)\n"
          "  --cache <file>            incremental result cache: warm\n"
          "                            runs replay findings for\n"
          "                            unchanged files\n"
          "  --json                    machine-readable findings on\n"
          "                            stdout instead of file:line\n"
          "  --core-stats <hdr>        stats header for the registry\n"
          "                            rule (default:\n"
          "                            <root>/src/core/core_stats.hh;\n"
          "                            'none' disables)\n"
          "  --golden-stats <inc>      golden CoreStats table for the\n"
          "                            accel-registry rule (default:\n"
          "                            <root>/tests/golden_core_stats.inc;\n"
          "                            'none' disables)\n"
          "  --accel-src <file>        file scanned for DLVP_ACCEL\n"
          "                            markers (repeatable; default:\n"
          "                            every .cc/.hh under\n"
          "                            <root>/src/pred)\n"
          "  --rule <name>             restrict to a rule (repeatable):\n"
          "                            ";
    bool first = true;
    for (const std::string &r : dlvp::analyze::allRules()) {
        os << (first ? "" : ", ") << r;
        first = false;
    }
    os << "\n  --list-rules              print rule names and exit\n"
          "  -h, --help                this text\n"
          "\n"
          "With no explicit files, every .cc/.hh/.cpp under <root>/src,\n"
          "<root>/tools, <root>/bench, and <root>/examples is analyzed.\n"
          "Exit status: 0 clean, 1 findings, 2 usage error.\n";
}

/** All C++ sources under the scanned top-level directories, sorted. */
std::vector<std::string>
defaultFileSet(const fs::path &root)
{
    std::vector<std::string> files;
    for (const char *sub : {"src", "tools", "bench", "examples"}) {
        const fs::path dir = root / sub;
        std::error_code ec;
        if (!fs::exists(dir, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cc" || ext == ".hh" || ext == ".cpp")
                files.push_back(it->path().string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

/**
 * "file" entries from compile_commands.json. A full JSON parser would
 * be overkill for the schema cmake emits; the quoted-path regex also
 * sidesteps needing any third-party dependency.
 */
std::vector<std::string>
compileCommandFiles(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "dlvp-analyze: cannot read " << path << "\n";
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::vector<std::string> files;
    static const std::regex re(R"re("file"\s*:\s*"([^"]+)")re");
    auto begin = std::sregex_iterator(text.begin(), text.end(), re);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        files.push_back((*it)[1].str());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string compileCommands;
    std::string coreStats;
    bool coreStatsSet = false;
    std::string goldenStats;
    bool goldenStatsSet = false;
    std::string layers;
    bool layersSet = false;
    bool json = false;
    std::vector<std::string> accelSrcs;
    AnalyzeConfig config;
    std::vector<std::string> explicitFiles;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "dlvp-analyze: " << arg
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const std::string &r : dlvp::analyze::allRules())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--root") {
            const char *v = value();
            if (!v)
                return 2;
            root = v;
        } else if (arg == "--compile-commands") {
            const char *v = value();
            if (!v)
                return 2;
            compileCommands = v;
        } else if (arg == "--layers") {
            const char *v = value();
            if (!v)
                return 2;
            layers = v;
            layersSet = true;
        } else if (arg == "--cache") {
            const char *v = value();
            if (!v)
                return 2;
            config.cachePath = v;
        } else if (arg == "--core-stats") {
            const char *v = value();
            if (!v)
                return 2;
            coreStats = v;
            coreStatsSet = true;
        } else if (arg == "--golden-stats") {
            const char *v = value();
            if (!v)
                return 2;
            goldenStats = v;
            goldenStatsSet = true;
        } else if (arg == "--accel-src") {
            const char *v = value();
            if (!v)
                return 2;
            accelSrcs.push_back(v);
        } else if (arg == "--rule") {
            const char *v = value();
            if (!v)
                return 2;
            const auto &known = dlvp::analyze::allRules();
            if (std::find(known.begin(), known.end(), v) ==
                known.end()) {
                std::cerr << "dlvp-analyze: unknown rule '" << v
                          << "'";
                const std::string hint =
                    dlvp::analyze::suggestRule(v);
                if (!hint.empty())
                    std::cerr << " (did you mean '" << hint << "'?)";
                std::cerr << "\n";
                return 2;
            }
            config.rules.push_back(v);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "dlvp-analyze: unknown option '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            explicitFiles.push_back(arg);
        }
    }

    config.rootPath = root;
    if (!explicitFiles.empty()) {
        config.files = explicitFiles;
    } else {
        config.files = defaultFileSet(root);
        if (config.files.empty()) {
            std::cerr << "dlvp-analyze: no sources under " << root
                      << "/src or " << root << "/tools\n";
            return 2;
        }
    }
    if (!compileCommands.empty()) {
        std::set<std::string> seen(config.files.begin(),
                                   config.files.end());
        for (std::string &f : compileCommandFiles(compileCommands)) {
            std::error_code ec;
            if (fs::exists(f, ec) && seen.insert(f).second)
                config.files.push_back(std::move(f));
        }
    }

    if (layersSet) {
        config.layersPath = layers == "none" ? "" : layers;
    } else {
        const fs::path def =
            fs::path(root) / "tools" / "analyze" / "layers.txt";
        std::error_code ec;
        if (fs::exists(def, ec))
            config.layersPath = def.string();
    }

    if (coreStatsSet) {
        config.coreStatsPath = coreStats == "none" ? "" : coreStats;
    } else {
        const fs::path def =
            fs::path(root) / "src" / "core" / "core_stats.hh";
        std::error_code ec;
        if (fs::exists(def, ec))
            config.coreStatsPath = def.string();
    }

    if (goldenStatsSet) {
        config.goldenStatsPath =
            goldenStats == "none" ? "" : goldenStats;
    } else {
        const fs::path def =
            fs::path(root) / "tests" / "golden_core_stats.inc";
        std::error_code ec;
        if (fs::exists(def, ec))
            config.goldenStatsPath = def.string();
    }
    if (!accelSrcs.empty()) {
        config.accelSourcePaths = accelSrcs;
    } else if (!config.goldenStatsPath.empty()) {
        const fs::path dir = fs::path(root) / "src" / "pred";
        std::error_code ec;
        for (auto it = fs::recursive_directory_iterator(dir, ec);
             it != fs::recursive_directory_iterator();
             it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cc" || ext == ".hh")
                config.accelSourcePaths.push_back(it->path().string());
        }
        std::sort(config.accelSourcePaths.begin(),
                  config.accelSourcePaths.end());
    }

    const std::vector<Finding> findings =
        dlvp::analyze::runAnalysis(config);
    if (json)
        dlvp::analyze::printFindingsJson(findings, std::cout);
    else
        dlvp::analyze::printFindings(findings, std::cout);
    return findings.empty() ? 0 : 1;
}
