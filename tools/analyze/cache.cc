#include "cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace dlvp::analyze::detail
{

namespace
{

constexpr const char *kMagic = "dlvp-analyze-cache-v1";

/** Paths/rules are single space-free words on a cache line. */
bool
plainWord(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            return false;
    return true;
}

bool
plainMessage(const std::string &s)
{
    return s.find('\n') == std::string::npos &&
           s.find('\r') == std::string::npos;
}

void
writeFinding(std::ostream &os, const Finding &f)
{
    os << "f " << f.line << " " << f.rule << " " << f.file << " "
       << f.message << "\n";
}

void
writeUse(std::ostream &os, const SuppressionUse &u)
{
    os << "u " << u.originLine << " " << u.rule << " " << u.file
       << "\n";
}

bool
parseFinding(std::istringstream &ss, Finding &out)
{
    if (!(ss >> out.line >> out.rule >> out.file))
        return false;
    std::getline(ss, out.message);
    if (!out.message.empty() && out.message.front() == ' ')
        out.message.erase(0, 1);
    return true;
}

bool
parseUse(std::istringstream &ss, SuppressionUse &out)
{
    return static_cast<bool>(ss >> out.originLine >> out.rule >>
                             out.file);
}

} // namespace

bool
loadAnalysisCache(const std::string &path,
                  std::uint64_t expectedConfigHash, AnalysisCache &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string header;
    if (!std::getline(in, header))
        return false;
    std::istringstream hs(header);
    std::string magic;
    std::uint64_t configHash = 0;
    if (!(hs >> magic >> configHash) || magic != kMagic ||
        configHash != expectedConfigHash)
        return false;

    AnalysisCache cache;
    cache.configHash = configHash;
    FileCacheEntry *cur = nullptr;
    bool inGlobal = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        std::string tag;
        ss >> tag;
        if (tag == "F") {
            std::uint64_t hash = 0, sibHash = 0;
            std::string fpath;
            if (!(ss >> hash >> sibHash >> fpath))
                return false;
            FileCacheEntry entry;
            entry.hash = hash;
            entry.sibHash = sibHash;
            cur = &cache.perFile.emplace(fpath, std::move(entry))
                       .first->second;
            inGlobal = false;
        } else if (tag == "G") {
            if (!(ss >> cache.global.hash))
                return false;
            cache.global.valid = true;
            cur = nullptr;
            inGlobal = true;
        } else if (tag == "f") {
            Finding f;
            if (!parseFinding(ss, f))
                return false;
            if (inGlobal)
                cache.global.findings.push_back(std::move(f));
            else if (cur)
                cur->findings.push_back(std::move(f));
            else
                return false;
        } else if (tag == "u") {
            SuppressionUse u;
            if (!parseUse(ss, u))
                return false;
            if (inGlobal)
                cache.global.uses.push_back(std::move(u));
            else if (cur)
                cur->uses.push_back(std::move(u));
            else
                return false;
        } else {
            return false; // unknown tag: treat the cache as corrupt
        }
    }
    out = std::move(cache);
    return true;
}

bool
saveAnalysisCache(const std::string &path, const AnalysisCache &cache)
{
    // Refuse to write anything the parser could misread; the only
    // cost of not caching is one cold re-run.
    const auto entryClean = [](const std::vector<Finding> &findings,
                               const std::vector<SuppressionUse>
                                   &uses) {
        for (const Finding &f : findings)
            if (!plainWord(f.rule) || !plainWord(f.file) ||
                !plainMessage(f.message))
                return false;
        for (const SuppressionUse &u : uses)
            if (!plainWord(u.rule) || !plainWord(u.file))
                return false;
        return true;
    };
    for (const auto &[fpath, entry] : cache.perFile)
        if (!plainWord(fpath) ||
            !entryClean(entry.findings, entry.uses))
            return false;
    if (!entryClean(cache.global.findings, cache.global.uses))
        return false;

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os << kMagic << " " << cache.configHash << "\n";
        for (const auto &[fpath, entry] : cache.perFile) {
            os << "F " << entry.hash << " " << entry.sibHash << " "
               << fpath << "\n";
            for (const Finding &f : entry.findings)
                writeFinding(os, f);
            for (const SuppressionUse &u : entry.uses)
                writeUse(os, u);
        }
        if (cache.global.valid) {
            os << "G " << cache.global.hash << "\n";
            for (const Finding &f : cache.global.findings)
                writeFinding(os, f);
            for (const SuppressionUse &u : cache.global.uses)
                writeUse(os, u);
        }
        if (!os)
            return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace dlvp::analyze::detail
