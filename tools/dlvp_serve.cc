/**
 * @file
 * The dlvp-serve daemon entry point (see src/serve/server.hh for the
 * architecture and README.md §dlvp-serve for the protocol).
 *
 *   dlvp_serve --socket <path> --cache <dir> [options]
 *
 * Runs until SIGINT/SIGTERM or a client's shutdown command, then
 * drains and exits 0. A final stats line goes to stderr so service
 * logs record what the instance did.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/fault_inject.hh"
#include "common/run_error.hh"
#include "serve/server.hh"
#include "sim/configs.hh"

namespace
{

using namespace dlvp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dlvp_serve --socket <path> --cache <dir> [options]\n"
        "  --workers <n>             simulation worker threads (2)\n"
        "  --max-queue <n>           admission limit; beyond it\n"
        "                            requests are rejected with\n"
        "                            retry_after_ms (32)\n"
        "  --degrade-queue <n>       queue depth at which detailed\n"
        "                            requests shed to sampled runs\n"
        "                            marked degraded:true (8)\n"
        "  --insts <n>               default uops per workload trace\n"
        "  --io-timeout-ms <n>       per-connection socket timeout\n"
        "  --retry-after-ms <n>      backoff hint in reject replies\n"
        "  --default-deadline-ms <n> deadline for requests that set\n"
        "                            none (0 = unlimited)\n"
        "  --degrade-warmup <n> --degrade-measure <n>\n"
        "  --degrade-period <n>      sampling spec for shed requests\n"
        "  --degrade-check           also measure cpi_error on shed\n"
        "                            requests (costly; validation)\n"
        "  --fault-plan <spec>       DLVP_FAULT_INJECT override\n");
    return 2;
}

/**
 * Signal plumbing: handlers may only touch async-signal-safe state,
 * so they write one byte into a pipe and a watcher thread does the
 * actual (mutex-taking) Server::requestStop().
 */
int g_sigPipe[2] = {-1, -1};

extern "C" void
onStopSignal(int)
{
    const char byte = 1;
    // A full pipe just means a stop is already pending.
    (void)!::write(g_sigPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions opts;
    opts.core = sim::baselineCore();
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--socket" && i + 1 < argc) {
            opts.socketPath = argv[++i];
        } else if (a == "--cache" && i + 1 < argc) {
            opts.cacheDir = argv[++i];
        } else if (a == "--workers" && i + 1 < argc) {
            opts.workers = static_cast<unsigned>(atoi(argv[++i]));
        } else if (a == "--max-queue" && i + 1 < argc) {
            opts.maxQueue =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--degrade-queue" && i + 1 < argc) {
            opts.degradeQueue =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--insts" && i + 1 < argc) {
            opts.insts = static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--io-timeout-ms" && i + 1 < argc) {
            opts.ioTimeoutMs =
                static_cast<unsigned>(atoi(argv[++i]));
        } else if (a == "--retry-after-ms" && i + 1 < argc) {
            opts.retryAfterMs =
                static_cast<unsigned>(atoi(argv[++i]));
        } else if (a == "--default-deadline-ms" && i + 1 < argc) {
            opts.defaultDeadlineMs = atof(argv[++i]);
        } else if (a == "--degrade-warmup" && i + 1 < argc) {
            opts.degradeSample.warmupInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--degrade-measure" && i + 1 < argc) {
            opts.degradeSample.measureInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--degrade-period" && i + 1 < argc) {
            opts.degradeSample.periodInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--degrade-check") {
            opts.degradeSample.check = true;
        } else if (a == "--fault-plan" && i + 1 < argc) {
            try {
                common::FaultPlan::setGlobal(argv[++i]);
            } catch (const common::RunError &e) {
                std::fprintf(stderr, "dlvp_serve: %s\n", e.what());
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return usage();
        }
    }
    if (opts.socketPath.empty() || opts.cacheDir.empty())
        return usage();

    if (::pipe(g_sigPipe) != 0) {
        std::fprintf(stderr, "dlvp_serve: pipe failed\n");
        return 1;
    }
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    try {
        serve::Server server(std::move(opts));
        std::thread sigWatcher([&server] {
            char byte = 0;
            if (::read(g_sigPipe[0], &byte, 1) == 1 && byte == 1)
                server.requestStop();
        });
        const serve::ServeOptions &o = server.options();
        const auto recovered = server.cache().stats();
        std::printf("dlvp-serve: listening on %s (cache %s: %zu "
                    "entries recovered, %zu quarantined; %u "
                    "workers)\n",
                    o.socketPath.c_str(), o.cacheDir.c_str(),
                    recovered.recoveredEntries,
                    recovered.recoveredQuarantined, o.workers);
        std::fflush(stdout);
        server.run();
        // Unblock the watcher if we stopped via a client command.
        const char byte = 0;
        (void)!::write(g_sigPipe[1], &byte, 1);
        sigWatcher.join();
        const serve::ServerStats s = server.statsSnapshot();
        std::fprintf(stderr,
                     "dlvp-serve: stopped after %llu requests "
                     "(%llu hits, %llu misses, %llu rejected, "
                     "%llu degraded, %llu watchdog timeouts)\n",
                     static_cast<unsigned long long>(s.requests),
                     static_cast<unsigned long long>(s.hits),
                     static_cast<unsigned long long>(s.misses),
                     static_cast<unsigned long long>(s.rejected),
                     static_cast<unsigned long long>(s.degraded),
                     static_cast<unsigned long long>(
                         s.watchdogTimeouts));
    } catch (const common::RunError &e) {
        std::fprintf(stderr, "dlvp_serve: %s\n",
                     e.describe().c_str());
        return 1;
    }
    return 0;
}
