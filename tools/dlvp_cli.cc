/**
 * @file
 * Command-line driver for the library: generate, inspect, profile,
 * save/load, and simulate workloads without writing C++.
 *
 *   dlvp_cli list
 *   dlvp_cli list-configs
 *   dlvp_cli list-predictors
 *   dlvp_cli run <workload> [--scheme S] [--insts N] [--dump]
 *   dlvp_cli sweep <workload> [--insts N] [--jobs J]
 *   dlvp_cli suite [--insts N] [--jobs J] [--json FILE]
 *   dlvp_cli profile <workload> [--insts N]
 *   dlvp_cli gen <workload> <file> [--insts N] [--v2]
 *   dlvp_cli gen-mega <file> [--insts N] [--phases a,b,c] ...
 *   dlvp_cli runfile <file> [--scheme S]
 *   dlvp_cli trace-info <file>
 *   dlvp_cli trace-convert <in> <out> [--to v1|v2]
 *   dlvp_cli serve-request <socket> <workload> [--scheme S] ...
 *   dlvp_cli serve-request <socket> --ping|--stats|--shutdown
 *
 * Parallelism: --jobs (or the DLVP_JOBS env var) sets the worker
 * count; output is bit-identical for any value (see sim/sweep.hh).
 *
 * Sampling: --sample switches run/runfile/sweep/suite to the interval
 * sampler (sim/sampler.hh); --sample-check additionally runs the full
 * trace and reports the sampled-vs-full CPI error.
 *
 * Configurations: see `dlvp_cli list-configs` (the named design
 * points) and `dlvp_cli list-predictors` (the LoadAccelerator
 * registry those configurations instantiate).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "common/run_error.hh"
#include "pred/accel.hh"
#include "serve/client.hh"
#include "sim/configs.hh"
#include "sim/report.hh"
#include "sim/sampler.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/mega.hh"
#include "trace/profilers.hh"
#include "trace/trace_io.hh"
#include "trace/trace_v2.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dlvp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dlvp_cli <command> [args]\n"
        "  list                              list the workload suite\n"
        "  list-configs                      named design points\n"
        "  list-predictors                   accelerator registry\n"
        "  run <workload> [opts]             run one configuration\n"
        "  sweep <workload> [opts]           all schemes side by side\n"
        "  suite [opts]                      all schemes x all workloads\n"
        "  profile <workload> [opts]         Figure 1/2 trace profiles\n"
        "  gen <workload> <file> [opts]      generate and save a trace\n"
        "  gen-mega <file> [opts]            compose a mega trace (v2)\n"
        "  runfile <file> [opts]             run a saved trace\n"
        "  trace-info <file>                 describe a saved trace\n"
        "  trace-convert <in> <out> [opts]   re-encode v1 <-> v2\n"
        "  serve-request <socket> <workload> [opts]\n"
        "                                    ask a dlvp-serve daemon\n"
        "                                    for one row (exit 0 ok,\n"
        "                                    3 rejected, 1 error)\n"
        "  serve-request <socket> --ping|--stats|--shutdown\n"
        "options: --scheme <name> --insts <n> --warmup <n> --dump\n"
        "         --jobs <n> (or DLVP_JOBS) --json <file>\n"
        "         --batch | --no-batch (lockstep column scheduling;\n"
        "           default on for suite, off for sweep)\n"
        "         --deadline-ms <n> (sweep/suite wall-clock budget)\n"
        "         --fault-plan <spec> (or DLVP_FAULT_INJECT; see\n"
        "           README \"Fault tolerance\" for the grammar)\n"
        "         --sample (interval sampling for run/runfile/sweep/\n"
        "           suite) --sample-warmup <n> --sample-measure <n>\n"
        "           --sample-period <n> --sample-check (also run the\n"
        "           full trace and report the CPI error)\n"
        "         --v2 (gen: write dlvp-trace-v2)\n"
        "         --to v1|v2 --chunk-insts <n> (trace-convert)\n"
        "         --phases <a,b,c> --phase-insts <n> --density <d>\n"
        "           --name <s> (gen-mega)\n"
        "         --seed <n> --priority <p> --client <name>\n"
        "           --ping --stats --shutdown (serve-request)\n"
        "schemes: see `dlvp_cli list-configs`\n");
    return 2;
}

int
unknownConfig(const std::string &name)
{
    std::fprintf(stderr, "unknown scheme '%s'", name.c_str());
    const std::string hint = sim::suggestConfig(name);
    if (!hint.empty())
        std::fprintf(stderr, " (did you mean '%s'?)", hint.c_str());
    std::fprintf(stderr, "; see `dlvp_cli list-configs`\n");
    return 2;
}

struct Options
{
    std::string scheme = "dlvp";
    std::size_t insts = sim::kDefaultInsts;
    std::size_t warmup = 0;  ///< 0: default fraction
    unsigned jobs = 0;       ///< 0: DLVP_JOBS env / hardware threads
    std::string jsonPath;    ///< write dlvp-sweep-v1 report here
    double deadlineMs = 0.0; ///< sweep wall-clock budget; 0 = none
    bool dump = false;
    /** -1 = command default (suite: on, sweep: off), 0 off, 1 on. */
    int batch = -1;
    /** Interval sampling; sample.enabled set by --sample*. */
    sim::SampleSpec sample;
    /** gen: write v2 instead of v1. */
    bool v2 = false;
    /** trace-convert target format. */
    std::string to = "v2";
    /** v2 chunk size (trace-convert, gen-mega, gen --v2). */
    std::uint32_t chunkInsts = trace::kDefaultChunkInsts;
    /** gen-mega phase list (comma-separated registry names). */
    std::string phases = "mcf,perlbmk,gzip,crafty";
    /** gen-mega micro-ops per phase occurrence. */
    std::size_t phaseInsts = 60000;
    /** gen-mega storm-occurrence fraction. */
    double density = 0.0;
    /** gen-mega trace name. */
    std::string name = "mega";
    /** serve-request: VpConfig::rngSeed override (part of the key). */
    std::uint64_t seed = 0;
    /** serve-request: queue priority (higher first, per client). */
    double priority = 0.0;
    /** serve-request: client name for per-client fairness. */
    std::string client;
    /** serve-request: daemon commands instead of a run. */
    bool ping = false;
    bool stats = false;
    bool shutdown = false;
};

bool
parseOptions(int argc, char **argv, int start, Options &opt)
{
    for (int i = start; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scheme" && i + 1 < argc) {
            opt.scheme = argv[++i];
        } else if (a == "--insts" && i + 1 < argc) {
            opt.insts = static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--warmup" && i + 1 < argc) {
            opt.warmup = static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--jobs" && i + 1 < argc) {
            const long v = atol(argv[++i]);
            if (v < 0 || v > 4096) {
                std::fprintf(stderr, "bad --jobs value '%s'\n",
                             argv[i]);
                return false;
            }
            opt.jobs = static_cast<unsigned>(v); // 0: default
        } else if (a == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (a == "--deadline-ms" && i + 1 < argc) {
            opt.deadlineMs = atof(argv[++i]);
        } else if (a == "--fault-plan" && i + 1 < argc) {
            // Applied immediately: overrides DLVP_FAULT_INJECT.
            try {
                common::FaultPlan::setGlobal(argv[++i]);
            } catch (const common::RunError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return false;
            }
        } else if (a == "--batch") {
            opt.batch = 1;
        } else if (a == "--no-batch") {
            opt.batch = 0;
        } else if (a == "--dump") {
            opt.dump = true;
        } else if (a == "--sample") {
            opt.sample.enabled = true;
        } else if (a == "--sample-warmup" && i + 1 < argc) {
            opt.sample.enabled = true;
            opt.sample.warmupInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--sample-measure" && i + 1 < argc) {
            opt.sample.enabled = true;
            opt.sample.measureInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--sample-period" && i + 1 < argc) {
            opt.sample.enabled = true;
            opt.sample.periodInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--sample-check") {
            opt.sample.enabled = true;
            opt.sample.check = true;
        } else if (a == "--v2") {
            opt.v2 = true;
        } else if (a == "--to" && i + 1 < argc) {
            opt.to = argv[++i];
            if (opt.to != "v1" && opt.to != "v2") {
                std::fprintf(stderr,
                             "bad --to value '%s' (want v1 or v2)\n",
                             opt.to.c_str());
                return false;
            }
        } else if (a == "--chunk-insts" && i + 1 < argc) {
            const long long v = atoll(argv[++i]);
            if (v < 1 || v > (1 << 24)) {
                std::fprintf(stderr, "bad --chunk-insts value '%s'\n",
                             argv[i]);
                return false;
            }
            opt.chunkInsts = static_cast<std::uint32_t>(v);
        } else if (a == "--phases" && i + 1 < argc) {
            opt.phases = argv[++i];
        } else if (a == "--phase-insts" && i + 1 < argc) {
            opt.phaseInsts =
                static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--density" && i + 1 < argc) {
            opt.density = atof(argv[++i]);
        } else if (a == "--name" && i + 1 < argc) {
            opt.name = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            opt.seed = static_cast<std::uint64_t>(atoll(argv[++i]));
        } else if (a == "--priority" && i + 1 < argc) {
            opt.priority = atof(argv[++i]);
        } else if (a == "--client" && i + 1 < argc) {
            opt.client = argv[++i];
        } else if (a == "--ping") {
            opt.ping = true;
        } else if (a == "--stats") {
            opt.stats = true;
        } else if (a == "--shutdown") {
            opt.shutdown = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return false;
        }
    }
    return true;
}

void
printRun(const std::string &label, const core::CoreStats &base,
         const core::CoreStats &s, bool dump)
{
    std::printf("%-14s cycles %-10llu ipc %-7.3f speedup %+6.2f%%  "
                "cov %5.1f%%  acc %6.2f%%\n",
                label.c_str(),
                static_cast<unsigned long long>(s.cycles), s.ipc(),
                100.0 * (sim::speedup(base, s) - 1.0),
                100.0 * s.coverage(), 100.0 * s.accuracy());
    if (dump)
        s.dump(std::cout);
}

/**
 * Sampled run of baseline + scheme over one trace; with --sample-check
 * the full detailed run happens too and the CPI error is printed.
 */
int
runSampledPair(const trace::Trace &t, const core::VpConfig &vp,
               const Options &opt)
{
    const auto params = sim::baselineCore();
    const auto base =
        sim::runSampled(params, sim::baselineVp(), t, opt.sample);
    const auto s = sim::runSampled(params, vp, t, opt.sample);
    std::printf("sampled: %zu intervals, %llu of %zu uops measured\n",
                base.intervals,
                static_cast<unsigned long long>(base.sampledInsts()),
                t.size());
    printRun(opt.scheme, base.stats, s.stats, opt.dump);
    if (opt.sample.check) {
        sim::Simulator simulator(params, t.size());
        const auto fullBase = simulator.run(t, sim::baselineVp());
        const auto fullS = simulator.run(t, vp);
        std::printf("cpi error vs full: baseline %.3f%%  %s %.3f%%\n",
                    100.0 * sim::cpiError(base, fullBase),
                    opt.scheme.c_str(),
                    100.0 * sim::cpiError(s, fullS));
    }
    return 0;
}

int
cmdList()
{
    sim::Table t("workloads");
    t.columns({"name", "suite", "description"});
    for (const auto &w : trace::WorkloadRegistry::all())
        t.row({w.name, w.suite, w.description});
    t.print(std::cout);
    return 0;
}

int
cmdListConfigs()
{
    sim::Table t("named configurations");
    t.columns({"name", "accelerator", "description"});
    for (const auto &c : sim::configCatalog())
        t.row({c.name, c.accel, c.description});
    t.print(std::cout);
    return 0;
}

int
cmdListPredictors()
{
    sim::Table t("load-accelerator registry");
    t.columns({"key", "description"});
    for (const auto &a : pred::acceleratorCatalog())
        t.row({a.key, a.description});
    t.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &workload, const Options &opt)
{
    core::VpConfig vp;
    if (!sim::configByName(opt.scheme, vp))
        return unknownConfig(opt.scheme);
    if (opt.sample.enabled) {
        const auto t =
            sim::TraceStore::global().acquire(workload, opt.insts);
        return runSampledPair(*t, vp, opt);
    }
    sim::Simulator simulator(sim::baselineCore(), opt.insts);
    const auto base = simulator.run(workload, sim::baselineVp());
    const auto s = simulator.run(workload, vp);
    printRun(opt.scheme, base, s, opt.dump);
    return 0;
}

std::vector<sim::SweepConfig>
defaultSchemes()
{
    std::vector<sim::SweepConfig> configs;
    for (const char *n :
         {"dlvp", "cap", "stride-dlvp", "vtage", "dvtage",
          "tournament", "balcvp", "hermes"}) {
        core::VpConfig vp;
        sim::configByName(n, vp);
        configs.push_back({n, vp});
    }
    return configs;
}

sim::SweepSpec
sweepSpec(const Options &opt)
{
    sim::SweepSpec spec;
    spec.configs = defaultSchemes();
    spec.insts = opt.insts;
    spec.core = sim::baselineCore();
    spec.baseline = sim::baselineVp();
    spec.jobs = opt.jobs;
    spec.sample = opt.sample;
    return spec;
}

int
maybeWriteJson(const sim::SweepResult &result, const Options &opt)
{
    if (opt.jsonPath.empty())
        return 0;
    std::ofstream os(opt.jsonPath);
    if (!os) {
        std::fprintf(stderr, "failed to write '%s'\n",
                     opt.jsonPath.c_str());
        return 1;
    }
    sim::writeSweepJson(os, result);
    std::fprintf(stderr, "wrote %s\n", opt.jsonPath.c_str());
    return 0;
}

void
printFailed(const std::string &label, const sim::JobOutcome &o)
{
    std::printf("%-14s %s: %s\n", label.c_str(),
                sim::jobStatusName(o.status), o.error.c_str());
}

int
cmdSweep(const std::string &workload, const Options &opt)
{
    auto spec = sweepSpec(opt);
    spec.workloads = {workload};
    spec.deadlineMs = opt.deadlineMs;
    spec.batch = opt.batch == 1;
    const auto result = sim::runSweep(spec);
    const auto &row = result.rows.front();
    if (row.baselineOutcome.ok())
        std::printf("%s (%zu insts): baseline ipc %.3f\n",
                    workload.c_str(), opt.insts, row.baseline.ipc());
    else
        printFailed(workload + "/baseline", row.baselineOutcome);
    for (std::size_t i = 0; i < result.configNames.size(); ++i) {
        if (row.cellOk(i))
            printRun(result.configNames[i], row.baseline,
                     row.results[i], false);
        else
            printFailed(result.configNames[i],
                        row.baselineOutcome.ok()
                            ? row.outcomes[i]
                            : row.baselineOutcome);
    }
    // Failed rows are data, not process failure: the JSON report
    // carries their status, so exit 0 if the report was written.
    return maybeWriteJson(result, opt);
}

int
cmdSuite(const Options &opt)
{
    auto spec = sweepSpec(opt);
    spec.deadlineMs = opt.deadlineMs;
    // Suite defaults to batched columns: results are bit-identical
    // (sweep determinism tests) and whole-grid throughput is what the
    // command exists for.
    spec.batch = opt.batch != 0;
    spec.progress = [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r%zu/%zu jobs%s", done, total,
                     done == total ? "\n" : "");
        std::fflush(stderr);
    };
    const auto result = sim::runSweep(spec);
    sim::Table t("suite sweep: speedup per workload");
    std::vector<std::string> cols = {"workload"};
    cols.insert(cols.end(), result.configNames.begin(),
                result.configNames.end());
    t.columns(std::move(cols));
    for (const auto &row : result.rows) {
        std::vector<sim::Table::Cell> cells = {row.workload};
        for (std::size_t ci = 0; ci < row.results.size(); ++ci) {
            if (row.cellOk(ci))
                cells.emplace_back(
                    sim::speedup(row.baseline, row.results[ci]));
            else
                cells.emplace_back(std::string(sim::jobStatusName(
                    row.baselineOutcome.ok()
                        ? row.outcomes[ci].status
                        : row.baselineOutcome.status)));
        }
        t.row(std::move(cells));
    }
    if (result.failedJobs() != 0)
        std::fprintf(stderr,
                     "warn: %zu jobs did not complete (see JSON "
                     "status fields)\n",
                     result.failedJobs());
    std::vector<sim::Table::Cell> gm = {std::string("GEOMEAN")};
    for (std::size_t i = 0; i < result.configNames.size(); ++i)
        gm.emplace_back(result.geomeanSpeedup(i));
    t.row(std::move(gm));
    t.print(std::cout);
    return maybeWriteJson(result, opt);
}

int
cmdProfile(const std::string &workload, const Options &opt)
{
    const auto t = trace::WorkloadRegistry::build(workload, opt.insts);
    const auto mix = t.mix();
    std::printf("%s: %llu uops, %.1f%% loads, %.1f%% stores, %.1f%% "
                "branches, %.1f%% of loads multi-dest\n",
                workload.c_str(),
                static_cast<unsigned long long>(mix.total),
                100.0 * double(mix.loads) / double(mix.total),
                100.0 * double(mix.stores) / double(mix.total),
                100.0 * double(mix.branches) / double(mix.total),
                mix.loads ? 100.0 * double(mix.multiDestLoads) /
                                double(mix.loads)
                          : 0.0);
    const auto conf = trace::profileConflicts(t);
    std::printf("Figure 1: %.2f%% committed conflicts, %.2f%% "
                "in-flight conflicts\n",
                100.0 * conf.committedFraction(),
                100.0 * conf.inflightFraction());
    const auto rep = trace::profileRepeatability(t);
    std::printf("Figure 2: addr>=8 %.1f%%  value>=64 %.1f%%\n",
                100.0 * rep.fractionAddrAtLeast[3],
                100.0 * rep.fractionValueAtLeast[6]);
    return 0;
}

int
cmdGen(const std::string &workload, const std::string &path,
       const Options &opt)
{
    const auto t = trace::WorkloadRegistry::build(workload, opt.insts);
    const bool ok = opt.v2
                        ? trace::saveTraceFileV2(t, path, opt.chunkInsts)
                        : trace::saveTraceFile(t, path);
    if (!ok) {
        std::fprintf(stderr, "failed to write '%s'\n", path.c_str());
        return 1;
    }
    std::printf("wrote %zu uops (%zu pages of memory image) to %s "
                "(%s)\n",
                t.size(), t.initialImage.numPages(), path.c_str(),
                opt.v2 ? "v2" : "v1");
    return 0;
}

int
cmdGenMega(const std::string &path, const Options &opt)
{
    trace::MegaSpec spec;
    spec.name = opt.name;
    spec.totalInsts = opt.insts;
    spec.phaseInsts = opt.phaseInsts;
    spec.conflictDensity = opt.density;
    spec.chunkInsts = opt.chunkInsts;
    for (std::size_t pos = 0; pos < opt.phases.size();) {
        const std::size_t comma = opt.phases.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? opt.phases.size() : comma;
        if (end > pos)
            spec.phases.push_back(opt.phases.substr(pos, end - pos));
        pos = end + 1;
    }
    trace::writeMegaV2(spec, path);
    const auto f = trace::ChunkedTraceFile::open(path);
    std::printf("wrote %llu uops in %llu chunks (%zu occurrences of "
                "%zu phases, density %.2f) to %s\n",
                static_cast<unsigned long long>(f->numInsts()),
                static_cast<unsigned long long>(f->numChunks()),
                trace::megaSchedule(spec).size(), spec.phases.size(),
                spec.conflictDensity, path.c_str());
    return 0;
}

/** True when the file leads with the dlvp-trace-v2 magic. */
bool
isV2File(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    char magic[8] = {};
    is.read(magic, sizeof(magic));
    return is && std::memcmp(magic, "DLVPTRC2", sizeof(magic)) == 0;
}

int
cmdRunFile(const std::string &path, const Options &opt)
{
    trace::Trace t;
    // v2 files attach as a streamed backing (O(chunk) resident); v1
    // materializes. Either load throws RunError{io_corrupt} with the
    // precise validation failure (caught in main) instead of a
    // generic "failed to read".
    if (isV2File(path))
        t.attachStream(trace::ChunkedTraceFile::open(path));
    else
        trace::loadTraceFileOrThrow(t, path);
    if (t.verifyReplay() != t.size()) {
        std::fprintf(stderr, "trace failed functional replay\n");
        return 1;
    }
    core::VpConfig vp;
    if (!sim::configByName(opt.scheme, vp))
        return unknownConfig(opt.scheme);
    std::printf("%s (%zu uops from %s%s)\n", t.name.c_str(), t.size(),
                path.c_str(), t.streamed() ? ", streamed v2" : "");
    if (opt.sample.enabled)
        return runSampledPair(t, vp, opt);
    sim::Simulator simulator(sim::baselineCore(), t.size());
    const auto base = simulator.run(t, sim::baselineVp());
    const auto s = simulator.run(t, vp);
    printRun(opt.scheme, base, s, opt.dump);
    return 0;
}

int
cmdTraceInfo(const std::string &path)
{
    if (isV2File(path)) {
        const auto f = trace::ChunkedTraceFile::open(path);
        const double perInst =
            f->numInsts() ? static_cast<double>(f->encodedBytes()) /
                                static_cast<double>(f->numInsts())
                          : 0.0;
        std::printf(
            "format      dlvp-trace-v2\n"
            "name        %s\n"
            "suite       %s\n"
            "uops        %llu\n"
            "pages       %zu\n"
            "chunks      %llu x %u uops\n"
            "file bytes  %llu (%.2f B/uop encoded; v1 would be "
            "%llu)\n",
            f->name().c_str(), f->suite().c_str(),
            static_cast<unsigned long long>(f->numInsts()),
            f->initialImage().numPages(),
            static_cast<unsigned long long>(f->numChunks()),
            f->chunkInsts(),
            static_cast<unsigned long long>(f->fileBytes()), perInst,
            static_cast<unsigned long long>(f->numInsts() * 50));
        return 0;
    }
    trace::Trace t;
    trace::loadTraceFileOrThrow(t, path);
    std::printf("format      dlvp-trace-v1\n"
                "name        %s\n"
                "suite       %s\n"
                "uops        %zu\n"
                "pages       %zu\n",
                t.name.c_str(), t.suite.c_str(), t.size(),
                t.initialImage.numPages());
    return 0;
}

int
cmdTraceConvert(const std::string &in, const std::string &out,
                const Options &opt)
{
    trace::Trace t;
    trace::loadTraceFileOrThrow(t, in); // materializes either format
    const bool ok = opt.to == "v1"
                        ? trace::saveTraceFile(t, out)
                        : trace::saveTraceFileV2(t, out, opt.chunkInsts);
    if (!ok) {
        std::fprintf(stderr, "failed to write '%s'\n", out.c_str());
        return 1;
    }
    std::printf("converted %zu uops: %s -> %s (%s)\n", t.size(),
                in.c_str(), out.c_str(), opt.to.c_str());
    return 0;
}

/**
 * Client mode for the dlvp-serve daemon (tools/dlvp_serve.cc): send
 * one request, print the raw response JSON, and map the response
 * status to an exit code scripts can branch on (0 ok, 3 rejected,
 * 1 anything else).
 */
int
cmdServeRequest(const std::string &socketPath,
                const std::string &workload, const Options &opt)
{
    std::ostringstream os;
    if (opt.ping || opt.stats || opt.shutdown) {
        os << "{\"cmd\": \""
           << (opt.ping ? "ping"
                        : (opt.stats ? "stats" : "shutdown"))
           << "\"}";
    } else {
        os << "{\"cmd\": \"run\", \"workload\": \""
           << sim::jsonEscape(workload) << "\", \"config\": \""
           << sim::jsonEscape(opt.scheme) << "\", \"insts\": "
           << opt.insts;
        if (opt.seed != 0)
            os << ", \"seed\": " << opt.seed;
        if (opt.priority != 0.0)
            os << ", \"priority\": " << opt.priority;
        if (opt.deadlineMs > 0.0)
            os << ", \"deadline_ms\": " << opt.deadlineMs;
        if (!opt.client.empty())
            os << ", \"client\": \"" << sim::jsonEscape(opt.client)
               << "\"";
        if (opt.sample.enabled)
            os << ", \"sample\": {\"warmup_insts\": "
               << opt.sample.warmupInsts << ", \"measure_insts\": "
               << opt.sample.measureInsts << ", \"period_insts\": "
               << opt.sample.periodInsts << ", \"check\": "
               << (opt.sample.check ? "true" : "false") << "}";
        os << "}";
    }
    serve::ServeClient cli(socketPath);
    const std::string response = cli.requestRaw(os.str());
    std::printf("%s\n", response.c_str());
    const serve::JsonValue v = serve::parseJson(response);
    std::string status;
    if (const serve::JsonValue *s = v.find("status"))
        status = s->asString();
    if (status == "ok")
        return 0;
    if (status == "rejected")
        return 3;
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    Options opt;
    // Single-run commands (run/profile/gen/runfile) surface RunError
    // as a clean one-line failure with exit 1, the way dlvp_fatal
    // used to; sweeps never throw per-cell errors (they become row
    // statuses) so this catch only sees caller mistakes there.
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "list-configs")
            return cmdListConfigs();
        if (cmd == "list-predictors")
            return cmdListPredictors();
        if (cmd == "run" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdRun(argv[2], opt);
        if (cmd == "sweep" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdSweep(argv[2], opt);
        if (cmd == "suite" && parseOptions(argc, argv, 2, opt))
            return cmdSuite(opt);
        if (cmd == "profile" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdProfile(argv[2], opt);
        if (cmd == "gen" && argc >= 4 &&
            parseOptions(argc, argv, 4, opt))
            return cmdGen(argv[2], argv[3], opt);
        if (cmd == "gen-mega" && argc >= 3) {
            opt.insts = 1000000; // mega default, not kDefaultInsts
            if (parseOptions(argc, argv, 3, opt))
                return cmdGenMega(argv[2], opt);
            return usage();
        }
        if (cmd == "runfile" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdRunFile(argv[2], opt);
        if (cmd == "trace-info" && argc >= 3)
            return cmdTraceInfo(argv[2]);
        if (cmd == "trace-convert" && argc >= 4 &&
            parseOptions(argc, argv, 4, opt))
            return cmdTraceConvert(argv[2], argv[3], opt);
        if (cmd == "serve-request" && argc >= 3) {
            // The workload operand is optional for --ping/--stats/
            // --shutdown, so peek before deciding where options start.
            const bool hasWorkload =
                argc >= 4 && argv[3][0] != '-';
            if (parseOptions(argc, argv, hasWorkload ? 4 : 3, opt)) {
                if (!hasWorkload && !opt.ping && !opt.stats &&
                    !opt.shutdown)
                    return usage();
                return cmdServeRequest(
                    argv[2], hasWorkload ? argv[3] : "", opt);
            }
            return usage();
        }
    } catch (const dlvp::common::RunError &e) {
        std::fprintf(stderr, "dlvp_cli: %s\n", e.describe().c_str());
        return 1;
    }
    return usage();
}
