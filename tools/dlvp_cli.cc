/**
 * @file
 * Command-line driver for the library: generate, inspect, profile,
 * save/load, and simulate workloads without writing C++.
 *
 *   dlvp_cli list
 *   dlvp_cli list-configs
 *   dlvp_cli list-predictors
 *   dlvp_cli run <workload> [--scheme S] [--insts N] [--dump]
 *   dlvp_cli sweep <workload> [--insts N] [--jobs J]
 *   dlvp_cli suite [--insts N] [--jobs J] [--json FILE]
 *   dlvp_cli profile <workload> [--insts N]
 *   dlvp_cli gen <workload> <file> [--insts N]
 *   dlvp_cli runfile <file> [--scheme S]
 *
 * Parallelism: --jobs (or the DLVP_JOBS env var) sets the worker
 * count; output is bit-identical for any value (see sim/sweep.hh).
 *
 * Configurations: see `dlvp_cli list-configs` (the named design
 * points) and `dlvp_cli list-predictors` (the LoadAccelerator
 * registry those configurations instantiate).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "common/run_error.hh"
#include "pred/accel.hh"
#include "sim/configs.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/profilers.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dlvp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dlvp_cli <command> [args]\n"
        "  list                              list the workload suite\n"
        "  list-configs                      named design points\n"
        "  list-predictors                   accelerator registry\n"
        "  run <workload> [opts]             run one configuration\n"
        "  sweep <workload> [opts]           all schemes side by side\n"
        "  suite [opts]                      all schemes x all workloads\n"
        "  profile <workload> [opts]         Figure 1/2 trace profiles\n"
        "  gen <workload> <file> [opts]      generate and save a trace\n"
        "  runfile <file> [opts]             run a saved trace\n"
        "options: --scheme <name> --insts <n> --warmup <n> --dump\n"
        "         --jobs <n> (or DLVP_JOBS) --json <file>\n"
        "         --batch | --no-batch (lockstep column scheduling;\n"
        "           default on for suite, off for sweep)\n"
        "         --deadline-ms <n> (sweep/suite wall-clock budget)\n"
        "         --fault-plan <spec> (or DLVP_FAULT_INJECT; see\n"
        "           README \"Fault tolerance\" for the grammar)\n"
        "schemes: see `dlvp_cli list-configs`\n");
    return 2;
}

int
unknownConfig(const std::string &name)
{
    std::fprintf(stderr, "unknown scheme '%s'", name.c_str());
    const std::string hint = sim::suggestConfig(name);
    if (!hint.empty())
        std::fprintf(stderr, " (did you mean '%s'?)", hint.c_str());
    std::fprintf(stderr, "; see `dlvp_cli list-configs`\n");
    return 2;
}

struct Options
{
    std::string scheme = "dlvp";
    std::size_t insts = sim::kDefaultInsts;
    std::size_t warmup = 0;  ///< 0: default fraction
    unsigned jobs = 0;       ///< 0: DLVP_JOBS env / hardware threads
    std::string jsonPath;    ///< write dlvp-sweep-v1 report here
    double deadlineMs = 0.0; ///< sweep wall-clock budget; 0 = none
    bool dump = false;
    /** -1 = command default (suite: on, sweep: off), 0 off, 1 on. */
    int batch = -1;
};

bool
parseOptions(int argc, char **argv, int start, Options &opt)
{
    for (int i = start; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scheme" && i + 1 < argc) {
            opt.scheme = argv[++i];
        } else if (a == "--insts" && i + 1 < argc) {
            opt.insts = static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--warmup" && i + 1 < argc) {
            opt.warmup = static_cast<std::size_t>(atoll(argv[++i]));
        } else if (a == "--jobs" && i + 1 < argc) {
            const long v = atol(argv[++i]);
            if (v < 0 || v > 4096) {
                std::fprintf(stderr, "bad --jobs value '%s'\n",
                             argv[i]);
                return false;
            }
            opt.jobs = static_cast<unsigned>(v); // 0: default
        } else if (a == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (a == "--deadline-ms" && i + 1 < argc) {
            opt.deadlineMs = atof(argv[++i]);
        } else if (a == "--fault-plan" && i + 1 < argc) {
            // Applied immediately: overrides DLVP_FAULT_INJECT.
            try {
                common::FaultPlan::setGlobal(argv[++i]);
            } catch (const common::RunError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return false;
            }
        } else if (a == "--batch") {
            opt.batch = 1;
        } else if (a == "--no-batch") {
            opt.batch = 0;
        } else if (a == "--dump") {
            opt.dump = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return false;
        }
    }
    return true;
}

void
printRun(const std::string &label, const core::CoreStats &base,
         const core::CoreStats &s, bool dump)
{
    std::printf("%-14s cycles %-10llu ipc %-7.3f speedup %+6.2f%%  "
                "cov %5.1f%%  acc %6.2f%%\n",
                label.c_str(),
                static_cast<unsigned long long>(s.cycles), s.ipc(),
                100.0 * (sim::speedup(base, s) - 1.0),
                100.0 * s.coverage(), 100.0 * s.accuracy());
    if (dump)
        s.dump(std::cout);
}

int
cmdList()
{
    sim::Table t("workloads");
    t.columns({"name", "suite", "description"});
    for (const auto &w : trace::WorkloadRegistry::all())
        t.row({w.name, w.suite, w.description});
    t.print(std::cout);
    return 0;
}

int
cmdListConfigs()
{
    sim::Table t("named configurations");
    t.columns({"name", "accelerator", "description"});
    for (const auto &c : sim::configCatalog())
        t.row({c.name, c.accel, c.description});
    t.print(std::cout);
    return 0;
}

int
cmdListPredictors()
{
    sim::Table t("load-accelerator registry");
    t.columns({"key", "description"});
    for (const auto &a : pred::acceleratorCatalog())
        t.row({a.key, a.description});
    t.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &workload, const Options &opt)
{
    core::VpConfig vp;
    if (!sim::configByName(opt.scheme, vp))
        return unknownConfig(opt.scheme);
    sim::Simulator simulator(sim::baselineCore(), opt.insts);
    const auto base = simulator.run(workload, sim::baselineVp());
    const auto s = simulator.run(workload, vp);
    printRun(opt.scheme, base, s, opt.dump);
    return 0;
}

std::vector<sim::SweepConfig>
defaultSchemes()
{
    std::vector<sim::SweepConfig> configs;
    for (const char *n :
         {"dlvp", "cap", "stride-dlvp", "vtage", "dvtage",
          "tournament", "balcvp", "hermes"}) {
        core::VpConfig vp;
        sim::configByName(n, vp);
        configs.push_back({n, vp});
    }
    return configs;
}

sim::SweepSpec
sweepSpec(const Options &opt)
{
    sim::SweepSpec spec;
    spec.configs = defaultSchemes();
    spec.insts = opt.insts;
    spec.core = sim::baselineCore();
    spec.baseline = sim::baselineVp();
    spec.jobs = opt.jobs;
    return spec;
}

int
maybeWriteJson(const sim::SweepResult &result, const Options &opt)
{
    if (opt.jsonPath.empty())
        return 0;
    std::ofstream os(opt.jsonPath);
    if (!os) {
        std::fprintf(stderr, "failed to write '%s'\n",
                     opt.jsonPath.c_str());
        return 1;
    }
    sim::writeSweepJson(os, result);
    std::fprintf(stderr, "wrote %s\n", opt.jsonPath.c_str());
    return 0;
}

void
printFailed(const std::string &label, const sim::JobOutcome &o)
{
    std::printf("%-14s %s: %s\n", label.c_str(),
                sim::jobStatusName(o.status), o.error.c_str());
}

int
cmdSweep(const std::string &workload, const Options &opt)
{
    auto spec = sweepSpec(opt);
    spec.workloads = {workload};
    spec.deadlineMs = opt.deadlineMs;
    spec.batch = opt.batch == 1;
    const auto result = sim::runSweep(spec);
    const auto &row = result.rows.front();
    if (row.baselineOutcome.ok())
        std::printf("%s (%zu insts): baseline ipc %.3f\n",
                    workload.c_str(), opt.insts, row.baseline.ipc());
    else
        printFailed(workload + "/baseline", row.baselineOutcome);
    for (std::size_t i = 0; i < result.configNames.size(); ++i) {
        if (row.cellOk(i))
            printRun(result.configNames[i], row.baseline,
                     row.results[i], false);
        else
            printFailed(result.configNames[i],
                        row.baselineOutcome.ok()
                            ? row.outcomes[i]
                            : row.baselineOutcome);
    }
    // Failed rows are data, not process failure: the JSON report
    // carries their status, so exit 0 if the report was written.
    return maybeWriteJson(result, opt);
}

int
cmdSuite(const Options &opt)
{
    auto spec = sweepSpec(opt);
    spec.deadlineMs = opt.deadlineMs;
    // Suite defaults to batched columns: results are bit-identical
    // (sweep determinism tests) and whole-grid throughput is what the
    // command exists for.
    spec.batch = opt.batch != 0;
    spec.progress = [](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r%zu/%zu jobs%s", done, total,
                     done == total ? "\n" : "");
        std::fflush(stderr);
    };
    const auto result = sim::runSweep(spec);
    sim::Table t("suite sweep: speedup per workload");
    std::vector<std::string> cols = {"workload"};
    cols.insert(cols.end(), result.configNames.begin(),
                result.configNames.end());
    t.columns(std::move(cols));
    for (const auto &row : result.rows) {
        std::vector<sim::Table::Cell> cells = {row.workload};
        for (std::size_t ci = 0; ci < row.results.size(); ++ci) {
            if (row.cellOk(ci))
                cells.emplace_back(
                    sim::speedup(row.baseline, row.results[ci]));
            else
                cells.emplace_back(std::string(sim::jobStatusName(
                    row.baselineOutcome.ok()
                        ? row.outcomes[ci].status
                        : row.baselineOutcome.status)));
        }
        t.row(std::move(cells));
    }
    if (result.failedJobs() != 0)
        std::fprintf(stderr,
                     "warn: %zu jobs did not complete (see JSON "
                     "status fields)\n",
                     result.failedJobs());
    std::vector<sim::Table::Cell> gm = {std::string("GEOMEAN")};
    for (std::size_t i = 0; i < result.configNames.size(); ++i)
        gm.emplace_back(result.geomeanSpeedup(i));
    t.row(std::move(gm));
    t.print(std::cout);
    return maybeWriteJson(result, opt);
}

int
cmdProfile(const std::string &workload, const Options &opt)
{
    const auto t = trace::WorkloadRegistry::build(workload, opt.insts);
    const auto mix = t.mix();
    std::printf("%s: %llu uops, %.1f%% loads, %.1f%% stores, %.1f%% "
                "branches, %.1f%% of loads multi-dest\n",
                workload.c_str(),
                static_cast<unsigned long long>(mix.total),
                100.0 * double(mix.loads) / double(mix.total),
                100.0 * double(mix.stores) / double(mix.total),
                100.0 * double(mix.branches) / double(mix.total),
                mix.loads ? 100.0 * double(mix.multiDestLoads) /
                                double(mix.loads)
                          : 0.0);
    const auto conf = trace::profileConflicts(t);
    std::printf("Figure 1: %.2f%% committed conflicts, %.2f%% "
                "in-flight conflicts\n",
                100.0 * conf.committedFraction(),
                100.0 * conf.inflightFraction());
    const auto rep = trace::profileRepeatability(t);
    std::printf("Figure 2: addr>=8 %.1f%%  value>=64 %.1f%%\n",
                100.0 * rep.fractionAddrAtLeast[3],
                100.0 * rep.fractionValueAtLeast[6]);
    return 0;
}

int
cmdGen(const std::string &workload, const std::string &path,
       const Options &opt)
{
    const auto t = trace::WorkloadRegistry::build(workload, opt.insts);
    if (!trace::saveTraceFile(t, path)) {
        std::fprintf(stderr, "failed to write '%s'\n", path.c_str());
        return 1;
    }
    std::printf("wrote %zu uops (%zu pages of memory image) to %s\n",
                t.size(), t.initialImage.numPages(), path.c_str());
    return 0;
}

int
cmdRunFile(const std::string &path, const Options &opt)
{
    trace::Trace t;
    // Throws RunError{io_corrupt} with the precise validation failure
    // (caught in main) instead of a generic "failed to read".
    trace::loadTraceFileOrThrow(t, path);
    if (t.verifyReplay() != t.size()) {
        std::fprintf(stderr, "trace failed functional replay\n");
        return 1;
    }
    core::VpConfig vp;
    if (!sim::configByName(opt.scheme, vp))
        return unknownConfig(opt.scheme);
    sim::Simulator simulator(sim::baselineCore(), t.size());
    const auto base = simulator.run(t, sim::baselineVp());
    const auto s = simulator.run(t, vp);
    std::printf("%s (%zu uops from %s)\n", t.name.c_str(), t.size(),
                path.c_str());
    printRun(opt.scheme, base, s, opt.dump);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    Options opt;
    // Single-run commands (run/profile/gen/runfile) surface RunError
    // as a clean one-line failure with exit 1, the way dlvp_fatal
    // used to; sweeps never throw per-cell errors (they become row
    // statuses) so this catch only sees caller mistakes there.
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "list-configs")
            return cmdListConfigs();
        if (cmd == "list-predictors")
            return cmdListPredictors();
        if (cmd == "run" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdRun(argv[2], opt);
        if (cmd == "sweep" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdSweep(argv[2], opt);
        if (cmd == "suite" && parseOptions(argc, argv, 2, opt))
            return cmdSuite(opt);
        if (cmd == "profile" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdProfile(argv[2], opt);
        if (cmd == "gen" && argc >= 4 &&
            parseOptions(argc, argv, 4, opt))
            return cmdGen(argv[2], argv[3], opt);
        if (cmd == "runfile" && argc >= 3 &&
            parseOptions(argc, argv, 3, opt))
            return cmdRunFile(argv[2], opt);
    } catch (const dlvp::common::RunError &e) {
        std::fprintf(stderr, "dlvp_cli: %s\n", e.describe().c_str());
        return 1;
    }
    return usage();
}
