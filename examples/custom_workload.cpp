/**
 * @file
 * Domain-specific example: authoring a custom workload with the
 * kernel-emission API and evaluating a custom predictor
 * configuration on it.
 *
 * The workload is a tiny B-tree-ish index lookup service: a repeating
 * query schedule walks a two-level index whose node types create the
 * per-position load paths PAP feeds on, with occasional leaf updates
 * that conventional value predictors trip over.
 */

#include <cstdio>
#include <iostream>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/kernel_ctx.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::trace;

    Trace t;
    t.name = "index-service";
    KernelCtx ctx(t, 7);

    // ---- build the index in the initial memory image ----
    const Addr root = 0x2000000;
    const unsigned fanout = 8;
    const Addr leaves = root + 0x1000;
    Rng init(99);
    for (unsigned i = 0; i < fanout; ++i) {
        // root slot i -> leaf i
        ctx.mem().write(root + i * 8, leaves + i * 128, 8);
        for (unsigned f = 0; f < 4; ++f)
            ctx.mem().write(leaves + i * 128 + f * 8, init.next64(),
                            8);
    }
    // A repeating query tape (the hot key set of a real index).
    const Addr tape = root + 0x8000;
    const unsigned tape_len = 48;
    std::vector<unsigned> queries(tape_len);
    for (auto &q : queries)
        q = static_cast<unsigned>(init.below(fanout));
    for (unsigned i = 0; i < tape_len; ++i)
        ctx.mem().write(tape + i * 4, queries[i], 4);
    ctx.sealInitialImage();

    // ---- emit the service loop ----
    Rng rng(5);
    std::size_t pos = 0;
    // The running checksum feeds the next tape address: queries are
    // serially dependent, the way a real cursor-driven index walk is,
    // so breaking the load chain is worth real cycles.
    Val carry = ctx.imm(16, 0);
    while (ctx.emitted() < 200000) {
        const unsigned q = queries[pos];
        const Addr ta = tape + pos * 4;
        pos = (pos + 1) % tape_len;
        Val tp = ctx.alu(0, ta, carry);
        Val qv = ctx.load(1, ta, tp, 4);
        // Root lookup: address depends on the query.
        const Addr slot = root + q * 8;
        Val sa = ctx.alu(2, slot, qv);
        Val leaf = ctx.load(4 + (q & 1), slot, sa);
        // Key-dependent branch writes the query into the load path.
        ctx.condBranch(6, (q & 1) != 0, leaf, 8);
        // Leaf field loads (a pair, ARM-style).
        auto [f0, f1] = ctx.loadPair(8 + (q & 1) * 2, leaf.v, leaf);
        Val acc = ctx.alu(12, f0.v ^ f1.v, f0, f1);
        carry = acc;
        if (rng.chance(0.01)) {
            // Rare leaf update: the next query of this key reloads a
            // changed value at an unchanged address.
            ctx.store(13, leaf.v + 24, acc.v, leaf, acc);
        }
        ctx.condBranch(14, true, acc, 0);
    }
    t.insts.resize(200000);
    std::printf("built '%s': %zu uops, replay check %s\n",
                t.name.c_str(), t.size(),
                t.verifyReplay() == t.size() ? "OK" : "FAILED");

    // ---- evaluate a custom DLVP configuration ----
    sim::Simulator simulator(sim::baselineCore(), 200000);
    const auto base = simulator.run(t, sim::baselineVp());

    auto small = sim::dlvpConfig();
    small.pap.tableBits = 8; // a 256-entry APT instead of 1k
    auto paper = sim::dlvpConfig();

    const auto s_small = simulator.run(t, small);
    const auto s_paper = simulator.run(t, paper);
    const auto s_vtage = simulator.run(t, sim::vtageConfig());

    std::printf("\n%-22s %9s %9s %9s\n", "config", "speedup",
                "coverage", "accuracy");
    const auto line = [&](const char *name,
                          const core::CoreStats &s) {
        std::printf("%-22s %8.2f%% %8.1f%% %8.2f%%\n", name,
                    100.0 * (sim::speedup(base, s) - 1.0),
                    100.0 * s.coverage(), 100.0 * s.accuracy());
    };
    line("DLVP, 256-entry APT", s_small);
    line("DLVP, 1k APT (paper)", s_paper);
    line("VTAGE (static filter)", s_vtage);
    std::printf("\n(a deliberately best-case, fully serialized and "
                "fully predictable walk; real workloads mix in "
                "unpredictable loads and parallel work -- see the "
                "Figure 6 bench)\n");
    return 0;
}
