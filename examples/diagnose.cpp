/**
 * @file
 * Developer diagnostic: run one workload under one scheme and dump
 * every counter the core collects. Useful when predictor behaviour on
 * a workload needs explaining.
 */

#include <cstring>
#include <iostream>

#include "sim/configs.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace dlvp;
    const std::string workload = argc > 1 ? argv[1] : "aifirf";
    const std::string scheme = argc > 2 ? argv[2] : "dlvp";
    const std::size_t insts =
        argc > 3 ? static_cast<std::size_t>(std::atol(argv[3]))
                 : 200000;

    core::VpConfig vp;
    if (scheme == "baseline")
        vp = sim::baselineVp();
    else if (scheme == "dlvp")
        vp = sim::dlvpConfig();
    else if (scheme == "cap")
        vp = sim::capConfig();
    else if (scheme == "vtage")
        vp = sim::vtageConfig();
    else if (scheme == "vtage-vanilla")
        vp = sim::vtageConfigWith(pred::VtageFilter::None, true);
    else if (scheme == "tournament")
        vp = sim::tournamentConfig();
    else {
        std::cerr << "unknown scheme " << scheme << "\n";
        return 1;
    }

    sim::Simulator simulator(sim::baselineCore(), insts);
    const auto stats = simulator.run(workload, vp);
    std::cout << "workload=" << workload << " scheme=" << scheme
              << "\n";
    stats.dump(std::cout);
    std::cout << "probe_late " << stats.probeLate << "\n"
              << "pvt_full_drops " << stats.pvtFullDrops << "\n"
              << "addr_correct " << stats.addrPredCorrect << "\n"
              << "addr_wrong " << stats.addrPredWrong << "\n"
              << "lscd_blocked " << stats.lscdBlocked << "\n"
              << "vp_predicted " << stats.vpPredictedLoads << "\n"
              << "committed_loads " << stats.committedLoads << "\n"
              << "issue_wait_avg "
              << double(stats.issueWaitCycles) /
                     double(stats.committedInsts)
              << "\n"
              << "dispatch_wait_avg "
              << double(stats.dispatchWaitCycles) /
                     double(stats.committedInsts)
              << "\n"
              << "rob_full_stalls " << stats.robFullStalls << "\n"
              << "iq_full_stalls " << stats.iqFullStalls << "\n"
              << "fetch_halt_cycles " << stats.fetchHaltCycles << "\n";
    return 0;
}
