/**
 * @file
 * Compare every value-prediction scheme (baseline, DLVP, CAP, VTAGE,
 * tournament) on a few representative workloads — a smaller, faster
 * rendition of Figure 6 for interactive use.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "sim/configs.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace dlvp;

    std::vector<std::string> workloads = {"perlbmk", "aifirf", "nat",
                                          "gobmk", "mcf"};
    if (argc > 1) {
        workloads.clear();
        for (int i = 1; i < argc; ++i)
            workloads.emplace_back(argv[i]);
    }

    sim::Simulator simulator(sim::baselineCore(), 200000);
    sim::Table t("scheme comparison (speedup vs baseline, "
                 "coverage, accuracy)");
    t.columns({"workload", "base_ipc", "dlvp_spd", "dlvp_cov",
               "dlvp_acc", "cap_spd", "vtage_spd", "vtage_cov",
               "tourn_spd"});

    for (const auto &w : workloads) {
        const auto base = simulator.run(w, sim::baselineVp());
        const auto dlvp = simulator.run(w, sim::dlvpConfig());
        const auto cap = simulator.run(w, sim::capConfig());
        const auto vtage = simulator.run(w, sim::vtageConfig());
        const auto tourn = simulator.run(w, sim::tournamentConfig());
        t.row({w, base.ipc(), sim::speedup(base, dlvp),
               dlvp.coverage(), dlvp.accuracy(),
               sim::speedup(base, cap), sim::speedup(base, vtage),
               vtage.coverage(), sim::speedup(base, tourn)});
        simulator.evict(w);
    }
    t.print(std::cout);
    return 0;
}
