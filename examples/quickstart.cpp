/**
 * @file
 * Quickstart: build a workload trace, run the baseline core and DLVP,
 * and print speedup / coverage / accuracy.
 *
 * This is the 30-second tour of the library's public API:
 *   1. trace::WorkloadRegistry — named benchmark recipes (Table 3)
 *   2. sim::Simulator          — builds traces, runs configurations
 *   3. sim::*Config()          — the paper's design points
 *   4. core::CoreStats         — everything the paper measures
 */

#include <cstdio>
#include <iostream>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/profilers.hh"

int
main()
{
    using namespace dlvp;

    sim::Simulator simulator(sim::baselineCore(), 200000);

    const char *name = "perlbmk";
    const trace::Trace &trace = simulator.workload(name);
    const auto mix = trace.mix();
    std::printf("workload %s: %llu uops (%.1f%% loads, %.1f%% stores, "
                "%.1f%% branches)\n",
                name, static_cast<unsigned long long>(mix.total),
                100.0 * double(mix.loads) / double(mix.total),
                100.0 * double(mix.stores) / double(mix.total),
                100.0 * double(mix.branches) / double(mix.total));

    std::printf("running baseline (no value prediction)...\n");
    const auto base = simulator.run(trace, sim::baselineVp());
    std::printf("  baseline: %llu cycles, IPC %.3f, branch MPKI %.2f\n",
                static_cast<unsigned long long>(base.cycles),
                base.ipc(), base.branchMpki());

    std::printf("running DLVP (PAP + cache probing)...\n");
    const auto dlvp = simulator.run(trace, sim::dlvpConfig());
    std::printf("  DLVP: %llu cycles, IPC %.3f\n",
                static_cast<unsigned long long>(dlvp.cycles),
                dlvp.ipc());
    std::printf("  coverage %.1f%%, accuracy %.2f%%, speedup %.2f%%\n",
                100.0 * dlvp.coverage(), 100.0 * dlvp.accuracy(),
                100.0 * (sim::speedup(base, dlvp) - 1.0));
    std::printf("  paq_drops=%llu probe_hits=%llu lscd_inserts=%llu\n",
                static_cast<unsigned long long>(dlvp.paqDrops),
                static_cast<unsigned long long>(dlvp.probeHits),
                static_cast<unsigned long long>(dlvp.lscdInserts));

    const auto conflicts = trace::profileConflicts(trace);
    std::printf("load-store conflicts: %.1f%% committed, %.1f%% "
                "in-flight (Figure 1 style)\n",
                100.0 * conflicts.committedFraction(),
                100.0 * conflicts.inflightFraction());
    return 0;
}
