/**
 * @file
 * Domain-specific example: the conflicting-store story end-to-end.
 *
 * Builds a compressor-style workload (the canonical
 * Load -> Store -> Load pattern), profiles its conflicts the way
 * Figure 1 does, and then shows the paper's three-way contrast:
 *
 *   1. a conventional last-value predictor (VTAGE) goes stale on
 *      committed-store conflicts and flushes;
 *   2. DLVP keeps predicting correctly because the probe reads the
 *      committed cache;
 *   3. in-flight conflicts would still hurt DLVP — the LSCD exists
 *      to filter them, and turning it off shows why.
 */

#include <cstdio>
#include <iostream>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/kernels.hh"
#include "trace/profilers.hh"

int
main()
{
    using namespace dlvp;
    using namespace dlvp::trace;

    // Build a conflict-heavy workload directly through the kernel
    // API: an adaptive FIR filter (committed-store conflicts: the
    // coefficients are rewritten in retrain bursts that retire long
    // before the next sample reloads them) interleaved with a
    // compressor (in-flight conflicts: freq[sym]++ reloads race the
    // store).
    Trace t;
    t.name = "conflict-demo";
    KernelCtx ctx(t, 2026);
    auto chase = kernels::prepareDspFilter(
        ctx, kernels::DspFilterParams{8, 64, true, 0.05, 1}, 0);
    auto comp = kernels::prepareCompressor(
        ctx,
        kernels::CompressorParams{64, 2048, 200,
                                  std::size_t{1} << 18, 2},
        20000);
    ctx.sealInitialImage();
    while (ctx.emitted() < 250000) {
        chase(ctx.emitted() + 25000);
        comp(std::min<std::size_t>(250000, ctx.emitted() + 25000));
    }
    t.insts.resize(250000);

    std::printf("== Figure 1 style conflict profile ==\n");
    const auto prof = profileConflicts(t);
    std::printf("dynamic loads:        %llu\n",
                static_cast<unsigned long long>(prof.dynamicLoads));
    std::printf("committed conflicts:  %.1f%%  (value changed by a "
                "retired store -> DLVP-safe)\n",
                100.0 * prof.committedFraction());
    std::printf("in-flight conflicts:  %.1f%%  (store still in the "
                "window -> LSCD territory)\n\n",
                100.0 * prof.inflightFraction());

    sim::Simulator simulator(sim::baselineCore(), 250000);
    const auto base = simulator.run(t, sim::baselineVp());

    const auto vtage = simulator.run(t, sim::vtageConfig());
    std::printf("== VTAGE (last values go stale) ==\n");
    std::printf("coverage %.1f%%  accuracy %.2f%%  value-misp "
                "flushes %llu  speedup %+.1f%%\n\n",
                100.0 * vtage.coverage(), 100.0 * vtage.accuracy(),
                static_cast<unsigned long long>(vtage.vpFlushes),
                100.0 * (sim::speedup(base, vtage) - 1.0));

    const auto dlvp = simulator.run(t, sim::dlvpConfig());
    std::printf("== DLVP (probe reads the committed cache) ==\n");
    std::printf("coverage %.1f%%  accuracy %.2f%%  flushes %llu  "
                "lscd inserts %llu  speedup %+.1f%%\n\n",
                100.0 * dlvp.coverage(), 100.0 * dlvp.accuracy(),
                static_cast<unsigned long long>(dlvp.vpFlushes),
                static_cast<unsigned long long>(dlvp.lscdInserts),
                100.0 * (sim::speedup(base, dlvp) - 1.0));

    auto nolscd = sim::dlvpConfig();
    nolscd.useLscd = false;
    const auto unprotected = simulator.run(t, nolscd);
    std::printf("== DLVP without the LSCD ==\n");
    std::printf("flushes %llu (vs %llu with LSCD): the 4-entry "
                "filter is what absorbs in-flight conflicts\n",
                static_cast<unsigned long long>(
                    unprotected.vpFlushes),
                static_cast<unsigned long long>(dlvp.vpFlushes));
    return 0;
}
